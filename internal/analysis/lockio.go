package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockio enforces PR 2's liveness contract for the networked layers:
// internal/directory and internal/comm must never block a sync mutex on
// network I/O, a sleep, or a channel operation. A mutex held across a
// 2-second dial turns every concurrent caller — including pure
// bookkeeping like Counters() — into a 2-second stall, which is exactly
// the failure mode the fallback ladder and resilient client exist to
// avoid.
//
// The analysis is lexical and function-local, with one level of
// intra-package call summaries: first every function in the package is
// scanned for *direct* blocking operations (net.Conn / net.Listener
// method calls, net dial/listen calls, time.Sleep, channel sends,
// receives, and selects); then each function body is walked in source
// order tracking which mutexes are lexically held — `mu.Lock()` begins
// a critical section, `mu.Unlock()` ends it, `defer mu.Unlock()`
// extends it to the end of the function — and any blocking operation,
// or call to a same-package function summarized as blocking, inside a
// critical section is reported. Function literals are not entered:
// their bodies run on their own schedule.
//
// Deliberate exceptions (the raw Client serializing its one connection
// under its mutex) carry //hetvet:ignore lockio annotations explaining
// why they are safe.
type lockioChecker struct{}

// lockioScope lists the packages under the no-I/O-under-lock contract.
var lockioScope = []string{
	"internal/directory",
	"internal/comm",
	"internal/exec",
	"internal/serve",
	"cmd/hetpland",
	"cmd/hcload",
}

func (lockioChecker) Name() string { return "lockio" }
func (lockioChecker) Desc() string {
	return "no network I/O, time.Sleep, or channel operations while a mutex is held in the networked packages (directory, comm, exec, serve) and their daemons"
}

func (lockioChecker) Run(pkg *Package) []Diagnostic {
	if !scoped(pkg, lockioScope...) {
		return nil
	}
	lc := &lockioPass{pkg: pkg, blocking: map[*types.Func]string{}}
	// Pass 1: summarize which package functions directly block.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if op := lc.directBlockingOp(fd.Body); op != "" {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					lc.blocking[obj] = op
				}
			}
		}
	}
	// Pass 2: walk critical sections.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc.stmts(fd.Body.List, map[string]bool{})
		}
	}
	return lc.out
}

type lockioPass struct {
	pkg      *Package
	blocking map[*types.Func]string // package funcs that directly block, with the op description
	out      []Diagnostic
}

// directBlockingOp returns a description of the first direct blocking
// operation in n ("" if none), ignoring function literals. A select
// with a default clause never blocks, so only its clause bodies are
// inspected — not its communication cases.
func (lc *lockioPass) directBlockingOp(n ast.Node) string {
	op := ""
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if op != "" {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				if !selectHasDefault(x) {
					op = "select"
					return false
				}
				for _, c := range x.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							walk(s)
						}
					}
				}
				return false
			}
			op = lc.blockingOp(n, false)
			return op == ""
		})
	}
	walk(n)
	return op
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingOp classifies a single node as a blocking operation. When
// summaries is true, calls to same-package functions summarized as
// blocking are included.
func (lc *lockioPass) blockingOp(n ast.Node, summaries bool) string {
	info := lc.pkg.Info
	switch x := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return "channel receive"
		}
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			return "select"
		}
	case *ast.RangeStmt:
		if t := info.Types[x.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return "range over channel"
			}
		}
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			// Plain same-package calls f(...): consult the summaries.
			if summaries {
				if id, ok := x.Fun.(*ast.Ident); ok {
					if fn, ok := info.Uses[id].(*types.Func); ok {
						if op, ok := lc.blocking[fn]; ok {
							return "call to " + fn.Name() + " (which does " + op + ")"
						}
					}
				}
			}
			return ""
		}
		// Package-level functions: time.Sleep, net.Dial*, net.Listen.
		if obj := pkgFuncObject(lc.pkg, sel); obj != nil {
			if isPkgFunc(obj, "time", "Sleep") {
				return "time.Sleep"
			}
			if obj.Pkg() != nil && obj.Pkg().Path() == "net" && isFunc(obj) {
				switch obj.Name() {
				case "Dial", "DialTimeout", "DialTCP", "DialUDP", "DialIP", "DialUnix", "Listen", "ListenTCP", "ListenPacket":
					return "net." + obj.Name()
				}
			}
			return ""
		}
		// Method calls on net.Conn / net.Listener values.
		if recvT := info.Types[sel.X].Type; recvT != nil && isNetIOType(recvT) {
			return "net connection " + sel.Sel.Name
		}
		// Calls to same-package functions that directly block.
		if summaries {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				if op, ok := lc.blocking[fn]; ok {
					return "call to " + fn.Name() + " (which does " + op + ")"
				}
			}
		}
	}
	return ""
}

// isNetIOType reports whether t (possibly behind pointers) is net.Conn,
// net.Listener, or a named type implementing net.Conn from package net.
func isNetIOType(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() != "net" {
		return false
	}
	switch obj.Name() {
	case "Conn", "Listener", "TCPConn", "UDPConn", "UnixConn", "IPConn", "TCPListener", "UnixListener", "PacketConn":
		return true
	}
	return false
}

// lockExpr returns the printed receiver of a sync.Mutex/RWMutex
// Lock/RLock/Unlock/RUnlock call, or "" when the call is not one.
func (lc *lockioPass) lockExpr(call *ast.CallExpr) (recv, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	t := lc.pkg.Info.Types[sel.X].Type
	if t == nil || !isSyncMutex(t) {
		return "", ""
	}
	return exprString(sel.X), sel.Sel.Name
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// exprString renders a receiver expression as a stable key ("c.mu").
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	}
	return "?"
}

// stmts walks a statement list in source order, tracking the lexically
// held lock set. Nested blocks get a copy of the set, so an unlock
// inside a branch does not end the critical section after it.
func (lc *lockioPass) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		switch x := s.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if recv, method := lc.lockExpr(call); recv != "" {
					switch method {
					case "Lock", "RLock":
						held[recv] = true
					case "Unlock", "RUnlock":
						delete(held, recv)
					}
					continue
				}
			}
			lc.check(s, held)
		case *ast.DeferStmt:
			if recv, method := lc.lockExpr(x.Call); recv != "" && (method == "Unlock" || method == "RUnlock") {
				// defer mu.Unlock(): the section runs to function end —
				// held stays set; nothing to do.
				continue
			}
			// Deferred work itself runs at return; skip.
		case *ast.GoStmt:
			// A spawned goroutine does not block the section.
		case *ast.BlockStmt:
			lc.stmts(x.List, copyHeld(held))
		case *ast.IfStmt:
			lc.checkExpr(x.Init, held)
			lc.checkExprNode(x.Cond, held)
			lc.stmts(x.Body.List, copyHeld(held))
			if x.Else != nil {
				lc.stmts([]ast.Stmt{x.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			lc.checkExpr(x.Init, held)
			lc.checkExprNode(x.Cond, held)
			lc.checkExpr(x.Post, held)
			lc.stmts(x.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			lc.check(s, held) // flags range-over-channel itself
			lc.stmts(x.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			lc.checkExpr(x.Init, held)
			lc.checkExprNode(x.Tag, held)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					lc.stmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			lc.checkExpr(x.Init, held)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					lc.stmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			lc.check(s, held) // the select itself blocks
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					lc.stmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			lc.stmts([]ast.Stmt{x.Stmt}, held)
		default:
			lc.check(s, held)
		}
	}
}

// check reports every blocking operation lexically inside s while any
// lock is held. The select statement is reported once, at its own
// position, without descending (its clauses are handled by stmts);
// a select with a default clause never parks, so it is not reported.
func (lc *lockioPass) check(s ast.Stmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	switch x := s.(type) {
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			lc.report(s, "select", held)
		}
		return
	case *ast.RangeStmt:
		if op := lc.blockingOp(s, true); op == "range over channel" {
			lc.report(s, op, held)
		}
		return
	}
	walkNoFuncLit(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.SelectStmt); ok {
			return false // nested select handled when stmts reaches it
		}
		if op := lc.blockingOp(n, true); op != "" {
			lc.report(n, op, held)
			if _, isCall := n.(*ast.CallExpr); isCall {
				return false // don't double-report the call's selector
			}
		}
		return true
	})
}

// checkExpr checks an optional init/post statement.
func (lc *lockioPass) checkExpr(s ast.Stmt, held map[string]bool) {
	if s != nil {
		lc.check(s, held)
	}
}

// checkExprNode checks an optional expression.
func (lc *lockioPass) checkExprNode(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	walkNoFuncLit(e, func(n ast.Node) bool {
		if op := lc.blockingOp(n, true); op != "" {
			lc.report(n, op, held)
			if _, isCall := n.(*ast.CallExpr); isCall {
				return false
			}
		}
		return true
	})
}

// report emits one finding naming the held lock(s).
func (lc *lockioPass) report(n ast.Node, op string, held map[string]bool) {
	locks := ""
	for k := range held {
		if locks == "" || k < locks {
			locks = k // deterministic: report the lexically smallest name
		}
	}
	lc.out = append(lc.out, diag(lc.pkg, n.Pos(), "lockio",
		"%s while %s is held; never block a mutex on network I/O, sleeps, or channel operations", op, locks))
}

// copyHeld clones the held-lock set for a nested lexical scope.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
