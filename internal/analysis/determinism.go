package analysis

import (
	"go/ast"
	"go/types"
)

// determinism enforces PR 1's reproducibility contract: schedulers, the
// simulator, the exact solver, the experiment engine, and the planning
// hot-path layers beneath them (assignment, incremental repair, timing
// evaluation — the warm-start and scratch code of DESIGN.md §11) must
// be deterministic functions of their inputs — same seed, same bytes. The
// paper's evaluation (t_max/t_lb tables, figure sweeps) is only
// comparable across runs and across the sequential/parallel engines if
// nothing reads the wall clock, draws from the process-global RNG, or
// lets Go's randomized map iteration order leak into output. The
// communicator and directory layers are additionally held to the
// injectable-clock convention: wall-clock time enters through a Clock
// field exactly once, so tests and chaos runs can fake it.
//
// Flagged in scoped packages:
//   - any reference to time.Now, time.Since, or time.Until (the
//     injectable clock's one default site carries an ignore directive)
//   - any use of math/rand's package-level functions, which draw from
//     the shared global source (rand.New / rand.NewSource / rand.NewZipf
//     with an explicit seeded source are the sanctioned alternatives)
//   - any range over a map, whose iteration order is deliberately
//     randomized by the runtime; iterate a sorted key slice instead, or
//     annotate loops whose effect is provably order-insensitive
type determinismChecker struct{}

// determinismScope lists the packages whose outputs must be
// bit-reproducible (module-relative suffixes).
var determinismScope = []string{
	"internal/assignment",
	"internal/incremental",
	"internal/timing",
	"internal/sched",
	"internal/sim",
	"internal/exact",
	"internal/experiments",
	"internal/comm",
	"internal/directory",
	"internal/exec",
	"internal/calib",
}

func (determinismChecker) Name() string { return "determinism" }
func (determinismChecker) Desc() string {
	return "no wall-clock reads, global math/rand, or map-iteration-order dependence in reproducible packages"
}

func (determinismChecker) Run(pkg *Package) []Diagnostic {
	if !scoped(pkg, determinismScope...) {
		return nil
	}
	var out []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if obj := pkgFuncObject(pkg, x); obj != nil {
					switch {
					case isPkgFunc(obj, "time", "Now"), isPkgFunc(obj, "time", "Since"), isPkgFunc(obj, "time", "Until"):
						out = append(out, diag(pkg, x.Pos(), "determinism",
							"wall-clock read time.%s in a deterministic package; use the injectable clock", obj.Name()))
					case isFunc(obj) && obj.Pkg() != nil && obj.Pkg().Path() == "math/rand" && globalRandFunc(obj.Name()):
						out = append(out, diag(pkg, x.Pos(), "determinism",
							"rand.%s draws from the process-global source; use a seeded rand.New(rand.NewSource(seed))", obj.Name()))
					}
				}
			case *ast.RangeStmt:
				if t := pkg.Info.Types[x.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						out = append(out, diag(pkg, x.Pos(), "determinism",
							"range over map has randomized iteration order; iterate sorted keys (or annotate if provably order-insensitive)"))
					}
				}
			}
			return true
		})
	}
	return out
}

// pkgFuncObject resolves a selector to a package-level function or
// variable object (nil for field/method selections).
func pkgFuncObject(pkg *Package, sel *ast.SelectorExpr) types.Object {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isPkgName := pkg.Info.Uses[id].(*types.PkgName); !isPkgName {
		return nil
	}
	return pkg.Info.Uses[sel.Sel]
}

// isFunc reports whether obj is a function.
func isFunc(obj types.Object) bool {
	_, ok := obj.(*types.Func)
	return ok
}

// isPkgFunc reports whether obj is the named object of the named
// standard-library package.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// globalRandFunc reports whether name is a math/rand package-level
// function that uses the shared global source. Constructors that take
// an explicit source — the sanctioned path — are excluded.
func globalRandFunc(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf":
		return false
	}
	return true
}
