// Package g is the golden fixture: exactly two findings on known
// lines, used to lock the text format, the JSON format, and the CLI's
// exit codes.
package g

import "errors"

func fail() error { return errors.New("x") }

// F discards twice.
func F() {
	fail()
	_ = fail()
}
