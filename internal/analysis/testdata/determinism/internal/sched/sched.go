// Package sched is a fixture for the determinism checker: it sits in a
// scoped package, so wall-clock reads, global rand, and map ranges are
// findings.
package sched

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want determinism "wall-clock read time.Now"
}

// Elapsed reads it through time.Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want determinism "wall-clock read time.Since"
}

// Jitter draws from the process-global source.
func Jitter() int {
	return rand.Intn(10) // want determinism "process-global source"
}

// Seeded uses the sanctioned constructors — no finding, including the
// *rand.Rand type in the signature.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Keys lets map order leak.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want determinism "range over map"
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum is order-insensitive and says so.
func Sum(m map[string]int) int {
	total := 0
	//hetvet:ignore determinism addition is commutative; iteration order cannot reach the result
	for _, v := range m {
		total += v
	}
	return total
}

// Slices and channels range freely.
func Total(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
