// Package ed is a fixture for the errdiscard checker.
package ed

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error { return errors.New("boom") }

// Bare discards the error by never binding it.
func Bare() {
	work() // want errdiscard "result error of work is silently discarded"
}

// Blank discards it with the blank identifier.
func Blank() {
	_ = work() // want errdiscard "error from work discarded with _"
}

// Tuple drops the error slot of a multi-value call.
func Tuple(s string) int {
	n, _ := fmt.Sscan(s, new(int)) // want errdiscard "error from fmt.Sscan discarded with _"
	return n
}

// Deferred cleanup is exempt by convention.
func Deferred(f *os.File) {
	defer f.Close()
}

// Async error handling is the goroutine's business, not this
// statement's.
func Async() {
	go work()
}

// Report uses the exempt sinks: fmt printing and in-memory builders.
func Report(sb *strings.Builder) string {
	fmt.Println("ok")
	sb.WriteString("ok")
	return sb.String()
}

// Annotated discards on purpose and says why.
func Annotated() {
	work() //hetvet:ignore errdiscard this fixture genuinely does not care
}

// Checked is the good path.
func Checked() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// NoError calls something that cannot fail.
func NoError() int {
	return len("ok")
}
