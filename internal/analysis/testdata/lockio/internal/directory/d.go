// Package directory is a fixture for the lockio checker: network I/O,
// sleeps, and channel operations between Lock and Unlock are findings.
package directory

import (
	"net"
	"sync"
	"time"
)

// Pool is the fixture's lock-holding type.
type Pool struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	ch   chan int
}

// Write blocks the mutex on the network.
func (p *Pool) Write(buf []byte) {
	p.mu.Lock()
	p.conn.Write(buf) // want lockio "net connection Write while p.mu is held"
	p.mu.Unlock()
}

// Nap holds via defer to the end of the function.
func (p *Pool) Nap() {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(time.Millisecond) // want lockio "time.Sleep while p.mu is held"
}

// Send parks on a channel under the lock.
func (p *Pool) Send(v int) {
	p.mu.Lock()
	p.ch <- v // want lockio "channel send while p.mu is held"
	p.mu.Unlock()
}

// ReadLocked blocks the read lock too.
func (p *Pool) ReadLocked() int {
	p.rw.RLock()
	defer p.rw.RUnlock()
	return <-p.ch // want lockio "channel receive while p.rw is held"
}

// Good snapshots under the lock and does I/O after unlocking.
func (p *Pool) Good(buf []byte) error {
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	_, err := c.Write(buf)
	return err
}

// NonBlocking uses select with a default — never parks, so holding the
// lock is fine.
func (p *Pool) NonBlocking(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- v:
	default:
	}
}

// Park is a plain select without a default.
func (p *Pool) Park(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want lockio "select while p.mu is held"
	case p.ch <- v:
	}
}

// redial blocks: calling it under the lock is caught by the one-level
// call summary.
func (p *Pool) redial(addr string) {
	c, err := net.Dial("tcp", addr)
	if err == nil {
		p.conn = c
	}
}

// Swap redials while holding the lock.
func (p *Pool) Swap(addr string) {
	p.mu.Lock()
	p.redial(addr) // want lockio "call to redial"
	p.mu.Unlock()
}

// Annotated holds the lock across a write on purpose and says why.
func (p *Pool) Annotated(buf []byte) {
	p.mu.Lock()
	//hetvet:ignore lockio the mutex is this fixture's framing lock
	p.conn.Write(buf)
	p.mu.Unlock()
}

// Async spawns the blocking work: function literals run on their own
// schedule, so the lock is not lexically held inside them.
func (p *Pool) Async(buf []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.conn.Write(buf)
	}()
}
