// Package sched exercises the hotpath checker: //hetvet:hotpath roots
// and their transitive callees must contain no allocating constructs,
// //hetvet:coldpath prunes deliberate growth paths, and error
// construction inside a return (or a panic argument) is cold by
// definition.
package sched

import (
	"fmt"
	"strconv"
)

// Plan is the scratch structure the hot path writes into.
type Plan struct {
	steps []int
	label string
	total int
}

// PlanInto is an annotated root: each allocating construct below is a
// finding; the fmt calls inside the early return and the panic are
// cold and are not.
//
//hetvet:hotpath fixture root
func PlanInto(p *Plan, n int) error {
	if p == nil {
		panic(fmt.Sprint("sched: nil plan ", n))
	}
	if n < 0 {
		return fmt.Errorf("sched: negative n %d", n)
	}
	defer func() { p.total++ }()
	buf := make([]byte, n) // want hotpath "make"
	m := map[int]int{n: n} // want hotpath "map literal"
	_ = m
	s := []int{n} // want hotpath "slice literal"
	_ = s
	q := &Plan{total: n} // want hotpath "address of composite literal"
	_ = q
	cb := func() int { return n } // want hotpath "function literal"
	_ = cb
	p.label = strconv.Itoa(n)    // want hotpath "strconv.Itoa call"
	fmt.Println(n)               // want hotpath "fmt.Println call"
	p.label = p.label + "!"      // want hotpath "string concatenation"
	raw := []byte(p.label)       // want hotpath "string-to-slice conversion"
	p.label = string(raw)        // want hotpath "conversion"
	_ = string(append(buf, '.')) // want hotpath "conversion"
	i := any(n)                  // want hotpath "interface conversion of a non-pointer value"
	_ = i
	for k := 0; k < n; k++ {
		defer release(p) // want hotpath "defer inside a loop"
	}
	go helper(p, n) // want hotpath "go statement"
	helper(p, n)
	grow(p, n)
	return nil
}

// helper is unannotated but hot transitively via PlanInto.
func helper(p *Plan, n int) {
	box(n) // want hotpath "interface boxing of a non-pointer argument"
	p.total += n
}

// box's interface parameter forces non-pointer arguments into a heap
// box at every call site.
func box(v any) {
	_ = v
}

// release balances PlanInto's deferred cleanup; clean.
func release(p *Plan) {
	p.total--
}

// grow reallocates the plan's backing array; the steady state never
// runs it, so it is pruned from the hot traversal.
//
//hetvet:coldpath growth path runs only when capacity is exceeded
func grow(p *Plan, n int) {
	if n > cap(p.steps) {
		p.steps = append(p.steps, make([]int, n)...)
	}
}

// Warmed is a second root whose one-time allocation carries a waiver.
//
//hetvet:hotpath
func Warmed(p *Plan) {
	//hetvet:ignore hotpath fixture demonstrates a waived one-time allocation
	p.steps = append(p.steps, make([]int, 1)...)
}

// Report is on no hot path; it may allocate freely.
func Report(p *Plan) string {
	return fmt.Sprintf("plan with %d steps", len(p.steps))
}
