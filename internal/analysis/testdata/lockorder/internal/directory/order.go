// Package directory exercises the lockorder checker: lock-order
// cycles (direct and through calls), mutex re-acquisition, and the
// select/lock inversion.
package directory

import "sync"

// Pair carries the mutexes the functions below order against each
// other, plus a channel guarded by one of them.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
	d sync.Mutex
	e sync.Mutex
	f sync.Mutex
	g sync.Mutex

	m  sync.Mutex
	ch chan int
}

// LockAB nests b inside a — one direction of a cycle.
func (p *Pair) LockAB() {
	p.a.Lock()
	p.b.Lock() // want lockorder "lock order cycle: Pair.b is acquired while Pair.a is held"
	p.b.Unlock()
	p.a.Unlock()
}

// LockBA nests a inside b — the reverse direction; the cycle is
// reported once, at the pair's alphabetically first edge above.
func (p *Pair) LockBA() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// LockCThenHelper acquires c and calls helper, which locks d: the
// ordering edge flows through the call.
func (p *Pair) LockCThenHelper() {
	p.c.Lock()
	p.helper() // want lockorder "via helper"
	p.c.Unlock()
}

// helper contributes its acquisitions to every caller's summary.
func (p *Pair) helper() {
	p.d.Lock()
	p.d.Unlock()
}

// LockDC takes the reverse order directly, closing the cycle.
func (p *Pair) LockDC() {
	p.d.Lock()
	p.c.Lock()
	p.c.Unlock()
	p.d.Unlock()
}

// Reacquire locks e twice on one path: sync mutexes are not
// reentrant.
func (p *Pair) Reacquire() {
	p.e.Lock()
	p.e.Lock() // want lockorder "self-deadlocks"
	p.e.Unlock()
	p.e.Unlock()
}

// ReacquireViaCall reaches the second Lock through a call.
func (p *Pair) ReacquireViaCall() {
	p.e.Lock()
	p.lockE() // want lockorder "call to lockE while Pair.e is held"
	p.e.Unlock()
}

// lockE takes e on behalf of its callers.
func (p *Pair) lockE() {
	p.e.Lock()
	p.e.Unlock()
}

// SendUnderLock sends on ch while m is held, making m a guard of ch.
func (p *Pair) SendUnderLock(v int) {
	p.m.Lock()
	p.ch <- v
	p.m.Unlock()
}

// Selector receives from ch and then takes m in the case body: the
// peer in SendUnderLock parks inside m's critical section waiting for
// this select, which waits for m.
func (p *Pair) Selector() {
	select {
	case v := <-p.ch:
		p.m.Lock() // want lockorder "select case on Pair.ch acquires Pair.m"
		_ = v
		p.m.Unlock()
	}
}

// Consistent takes f then g — an ordering edge with no reverse is not
// a finding.
func (p *Pair) Consistent() {
	p.f.Lock()
	p.g.Lock()
	p.g.Unlock()
	p.f.Unlock()
}

// ConsistentAgain repeats the same order; still no finding.
func (p *Pair) ConsistentAgain() {
	p.f.Lock()
	p.g.Lock()
	p.g.Unlock()
	p.f.Unlock()
}

// WaivedReacquire documents a deliberate double acquisition with a
// reasoned waiver.
func (p *Pair) WaivedReacquire() {
	p.m.Lock()
	//hetvet:ignore lockorder fixture demonstrates a documented waiver
	p.m.Lock()
	p.m.Unlock()
	p.m.Unlock()
}
