module hetsched

go 1.21
