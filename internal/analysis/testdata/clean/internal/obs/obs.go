// Package obs is the finding-free half of the clean fixture: every
// pattern here is the sanctioned way to satisfy the nilguard contract.
package obs

// Counter is an instrument with the guard discipline applied.
type Counter struct{ n int64 }

// Inc is a no-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Value returns zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}
