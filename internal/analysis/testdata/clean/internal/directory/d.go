// Package directory is the finding-free fixture for the lockio,
// determinism, and errdiscard checkers: locks guard bookkeeping only,
// randomness is seeded, map iteration is sorted, and errors are
// handled.
package directory

import (
	"math/rand"
	"net"
	"sort"
	"sync"
)

// Pool snapshots under its lock and does network I/O outside it.
type Pool struct {
	mu   sync.Mutex
	conn net.Conn
	ch   chan int
}

// Write snapshots the connection, then writes unlocked.
func (p *Pool) Write(buf []byte) error {
	p.mu.Lock()
	c := p.conn
	p.mu.Unlock()
	_, err := c.Write(buf)
	return err
}

// Notify never parks while holding the lock.
func (p *Pool) Notify(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- v:
	default:
	}
}

// Close tears the connection down outside the lock and returns the
// error.
func (p *Pool) Close() error {
	p.mu.Lock()
	c := p.conn
	p.conn = nil
	p.mu.Unlock()
	if c == nil {
		return nil
	}
	return c.Close()
}

// Shuffle uses an explicitly seeded source.
func Shuffle(xs []int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SortedKeys iterates the map in a deterministic order: it collects
// every key (annotated order-insensitive) and sorts before anyone
// observes the order.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//hetvet:ignore determinism collecting keys is order-insensitive; the sort below fixes the order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
