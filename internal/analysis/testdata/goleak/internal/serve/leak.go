// Package serve exercises the goleak checker: every go statement needs
// an Add/Done/Wait WaitGroup join or a lifecycle-channel signal, and an
// orphaned spawn is reported at its go statement.
package serve

import (
	"context"
	"sync"
)

// Server spawns workers under the disciplines the checker accepts.
type Server struct {
	wg   sync.WaitGroup
	quit chan struct{}
	jobs chan int
}

// JoinedWorker is the sanctioned join: Add before the spawn, Done in
// the spawned body, Wait in Close.
func (s *Server) JoinedWorker() {
	s.wg.Add(1)
	go s.pump()
}

// pump drains the job channel until it is closed.
func (s *Server) pump() {
	defer s.wg.Done()
	for j := range s.jobs {
		_ = j
	}
}

// Close joins every worker the server spawned.
func (s *Server) Close() {
	s.wg.Wait()
}

// SignalWorker terminates by selecting on the quit channel.
func (s *Server) SignalWorker() {
	go func() {
		for {
			select {
			case <-s.quit:
				return
			case j := <-s.jobs:
				_ = j
			}
		}
	}()
}

// CtxWorker terminates when the context is canceled.
func CtxWorker(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// DrainWatcher is the drain-watcher pattern: the goroutine exits when
// the group drains, so the group's own join discipline covers it.
func (s *Server) DrainWatcher(done chan struct{}) {
	go func() {
		s.wg.Wait()
		close(done)
	}()
}

// ExternalJoined spawns a body this package cannot see, but under a
// counter the package Add/Waits — trusted by convention.
func (s *Server) ExternalJoined(run func(*sync.WaitGroup)) {
	s.wg.Add(1)
	go run(&s.wg)
}

// Orphan parks on a plain channel forever: no join, no signal.
func (s *Server) Orphan() {
	go func() { // want goleak "no provable shutdown path"
		for j := range s.jobs {
			_ = j
		}
	}()
}

// NamedOrphan spawns a same-package method that never terminates and
// is not joined: the Done inside pump pairs with no Add here.
func (s *Server) NamedOrphan() {
	go s.pump() // want goleak "no provable shutdown path"
}

// ExternalOrphan spawns a function whose body this package cannot
// analyze, with no joined counter to trust.
func ExternalOrphan(c *sync.Cond) {
	go c.Signal() // want goleak "cannot analyze"
}

// Detached is deliberately fire-and-forget; the waiver documents it.
func (s *Server) Detached() {
	//hetvet:ignore goleak fixture demonstrates a documented process-lifetime goroutine
	go func() {
		for j := range s.jobs {
			_ = j
		}
	}()
}
