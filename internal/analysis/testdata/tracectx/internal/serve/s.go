// Package serve is a fixture for the tracectx checker: exported
// functions that spawn goroutines or cross the wire must accept a
// context.Context.
package serve

import (
	"context"
	"net"
)

// Daemon is the fixture's service type.
type Daemon struct{ tasks chan int }

// Start spawns workers without a ctx.
func (d *Daemon) Start() { // want tracectx "spawns goroutines"
	go d.worker()
}

// StartCtx spawns workers but can carry a trace.
func (d *Daemon) StartCtx(ctx context.Context) {
	_ = ctx
	go d.worker()
}

// Dial crosses the wire without a ctx.
func Dial(addr string) (net.Conn, error) { // want tracectx "crosses the wire via net.Dial"
	return net.Dial("tcp", addr)
}

// DialCtx crosses the wire and can carry a trace.
func DialCtx(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// Listen binds without a ctx.
func Listen(addr string) (net.Listener, error) { // want tracectx "crosses the wire via net.Listen"
	return net.Listen("tcp", addr)
}

// Background dials through a Dialer with a synthesized context — the
// DialContext case the checker names explicitly.
func Background(addr string) (net.Conn, error) { // want tracectx "crosses the wire via net.Dialer.DialContext"
	var d net.Dialer
	return d.DialContext(context.Background(), "tcp", addr)
}

// Workers is a process-lifetime pool: legitimately requestless.
//
//hetvet:ignore tracectx process-lifetime worker pool; no request exists at construction
func Workers(n int) *Daemon {
	d := &Daemon{tasks: make(chan int, n)}
	for i := 0; i < n; i++ {
		go d.worker()
	}
	return d
}

// Pure touches neither goroutines nor the network: out of contract.
func Pure(a, b int) int { return a + b }

// Handler only defines a literal that spawns later — the literal runs
// on its own schedule, so the enclosing function is not flagged.
func Handler(d *Daemon) func() {
	return func() { go d.worker() }
}

// worker is unexported: out of contract.
func (d *Daemon) worker() {
	for range d.tasks {
	}
}
