// Package sched is outside the tracectx scope: spawning goroutines
// without a ctx is fine here.
package sched

// Fan spawns without a ctx and is not flagged — wrong package.
func Fan(n int) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
