// Package dir exercises malformed hetvet:ignore directives: each one
// below is itself reported under the pseudo-check "directive".
package dir

//hetvet:ignore errdiscard
func MissingReason() {}

//hetvet:ignore bogus because the check does not exist
func UnknownCheck() {}

//hetvet:ignore
func Empty() {}
