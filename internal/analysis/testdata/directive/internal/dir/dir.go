// Package dir exercises malformed hetvet directives: each one below
// is itself reported under the pseudo-check "directive".
package dir

//hetvet:ignore errdiscard
func MissingReason() {}

//hetvet:ignore bogus because the check does not exist
func UnknownCheck() {}

//hetvet:ignore
func Empty() {}

// hetvet:ignore errdiscard near miss: a space after the slashes
func SpacedDirective() {}

/*hetvet:ignore errdiscard near miss: a block comment*/
func BlockComment() {}

//HETVET:ignore errdiscard near miss: upper case
func UpperCase() {}

//hetvet:frobnicate the verb does not exist
func UnknownVerb() {}

//hetvet:coldpath
func ColdpathNoReason() {}
