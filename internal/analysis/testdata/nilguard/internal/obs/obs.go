// Package obs is a fixture: exported pointer-receiver methods on its
// exported types are held to the nil-guard contract.
package obs

// Counter is an instrument type (exported, with exported pointer
// methods), so the checker discovers it automatically.
type Counter struct{ n int64 }

// Inc opens with the guard — no finding.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add is missing the guard.
func (c *Counter) Add(d int64) { // want nilguard "must begin with `if c == nil { return ... }`"
	c.n += d
}

// Value inverts the guard on purpose and says why.
//
//hetvet:ignore nilguard a nil counter reads as zero through the inverted branch
func (c *Counter) Value() int64 {
	if c != nil {
		return c.n
	}
	return 0
}

// Flipped writes the guard with nil on the left — still a guard.
func (c *Counter) Flipped() {
	if nil == c {
		return
	}
	c.n++
}

// reset is unexported: out of contract.
func (c *Counter) reset() { c.n = 0 }

// Gauge never names its receiver, so the guard cannot exist.
type Gauge struct{ v float64 }

// Set has no receiver name.
func (*Gauge) Set(float64) {} // want nilguard "must name its receiver"

// Get is fine.
func (g *Gauge) Get() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// snapshot is unexported: its methods are out of contract.
type snapshot struct{ n int64 }

// N needs no guard.
func (s *snapshot) N() int64 { return s.n }

// Reading has a value receiver: nil cannot reach it.
type Reading struct{ v float64 }

// V needs no guard.
func (r Reading) V() float64 { return r.v }

var _ = (&Counter{}).reset
var _ = (&snapshot{}).N
