package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// tracectx enforces the PR 8 correlation contract: request-scoped
// tracing only works end to end if every exported entry point in the
// serving and data-plane packages that spawns concurrent work or
// crosses the wire can carry an obs.TraceContext — which in Go means
// accepting a context.Context. An exported function that dials,
// listens, or launches goroutines without a ctx parameter is a place
// where a request trace silently dies.
//
// The check is deliberately shallow: it looks only at the function's
// own body (one lexical level, not descending into function literals
// except to see the `go` keyword itself) for
//
//   - a go statement, or
//   - a call to net.Dial*/net.Listen*, or
//   - a DialContext call on a net.Dialer (which wants a real ctx, not
//     context.Background()).
//
// Construction-time listeners and process-lifetime worker pools are
// legitimately requestless; they carry //hetvet:ignore tracectx with
// the reason.
type tracectxChecker struct{}

// tracectxScope lists the packages under the trace-propagation
// contract: the planning service and the data-plane executor — the two
// layers a request trace must cross to appear in one Perfetto view.
var tracectxScope = []string{
	"internal/serve",
	"internal/exec",
}

func (tracectxChecker) Name() string { return "tracectx" }
func (tracectxChecker) Desc() string {
	return "exported functions in internal/serve and internal/exec that spawn work or cross the wire must take a context.Context"
}

func (tracectxChecker) Run(pkg *Package) []Diagnostic {
	if !scoped(pkg, tracectxScope...) {
		return nil
	}
	var out []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if hasContextParam(pkg, fd) {
				continue
			}
			if why := escapesWithoutCtx(pkg, fd.Body); why != "" {
				name := fd.Name.Name
				if fd.Recv != nil {
					if _, tn, _ := receiverInfo(fd); tn != "" {
						name = tn + "." + name
					}
				}
				out = append(out, diag(pkg, fd.Pos(), "tracectx",
					"exported %s %s but has no context.Context parameter, so a request trace cannot cross it; accept a ctx or annotate why the work is requestless",
					name, why))
			}
		}
	}
	return out
}

// hasContextParam reports whether any parameter of fd (including the
// receiver list's siblings) is a context.Context.
func hasContextParam(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := pkg.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	return false
}

// escapesWithoutCtx scans the body one lexical level deep for work
// that should carry a trace; it returns a short description of the
// first such site, or "" when the body is trace-neutral.
func escapesWithoutCtx(pkg *Package, body *ast.BlockStmt) string {
	why := ""
	walkNoFuncLit(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			why = "spawns goroutines"
			return false
		case *ast.CallExpr:
			if w := wireCall(pkg, x); w != "" {
				why = w
				return false
			}
		}
		return true
	})
	return why
}

// wireCall classifies a call as wire-crossing: package-level
// net.Dial*/net.Listen*, or DialContext on a net.Dialer.
func wireCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if obj := pkgFuncObject(pkg, sel); obj != nil {
		if obj.Pkg() != nil && obj.Pkg().Path() == "net" &&
			(strings.HasPrefix(obj.Name(), "Dial") || strings.HasPrefix(obj.Name(), "Listen")) {
			return "crosses the wire via net." + obj.Name()
		}
		return ""
	}
	if sel.Sel.Name != "DialContext" {
		return ""
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "net" && obj.Name() == "Dialer" {
		return "crosses the wire via net.Dialer.DialContext"
	}
	return ""
}
