package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// goleak proves every goroutine the concurrent subsystems spawn has a
// shutdown path. A leaked goroutine is the quietest failure the serving
// stack can have: the daemon drains, the test passes, and a worker
// parked on a channel nobody will ever close holds its stack, its
// captured buffers, and — under load — a file descriptor, forever.
//
// The checker builds a per-package spawn graph: every `go` statement is
// an edge from its spawning function to the function it runs (a
// function literal, or a named same-package function or method whose
// body it resolves). A spawn is accepted when either termination
// discipline holds:
//
//   - join: a sync.WaitGroup counter is Add'ed lexically before the
//     spawn in the spawning function, the spawned body calls Done on
//     the same counter (deferred or direct), and the same counter is
//     Wait'ed somewhere in the package — the Server/Daemon
//     Close/Drain/Shutdown pattern, or a local wg.Wait() in the
//     spawning function.
//   - signal: the spawned body (or a same-package function it calls)
//     receives from a ctx.Done() channel or from a channel whose name
//     marks it a lifecycle channel (done, quit, stop, closing,
//     shutdown, ...), ranges over one, or waits on a sync.WaitGroup
//     that the package drains (the drain-watcher pattern:
//     go func() { wg.Wait(); close(done) }()).
//
// Everything else — including spawning a function from another package,
// whose body the per-package graph cannot see — is an orphaned
// goroutine, reported with the spawn site and which termination edge is
// missing. Deliberate detachments carry //hetvet:ignore goleak waivers.
type goleakChecker struct{}

// goleakScope lists the packages whose goroutines must be provably
// collectable: the serving stack, the data plane, and the harnesses
// that spawn work on their behalf.
var goleakScope = []string{
	"internal/serve",
	"internal/exec",
	"internal/directory",
	"internal/comm",
	"internal/obs",
	"internal/faults",
	"internal/experiments",
	"internal/calib",
}

func (goleakChecker) Name() string { return "goleak" }
func (goleakChecker) Desc() string {
	return "every goroutine spawned in the concurrent packages is joined by a WaitGroup or selects on a ctx/done channel"
}

// shutdownChanName matches identifier names that conventionally carry a
// lifecycle signal. "clos" covers closing/closed, "shut" shutdown,
// "term" terminate/terminated, "cancel" cancelation channels.
var shutdownChanName = regexp.MustCompile(`(?i)(done|quit|stop|clos|shut|exit|term|cancel)`)

func (goleakChecker) Run(pkg *Package) []Diagnostic {
	if !scoped(pkg, goleakScope...) {
		return nil
	}
	g := &goleakPass{
		pkg:    pkg,
		decls:  map[*types.Func]*ast.FuncDecl{},
		waited: map[*types.Var]bool{},
		signal: map[*types.Func]int{},
	}
	// Index the package's function bodies and the WaitGroups it drains.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				g.decls[obj] = fd
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v := g.waitGroupMethod(call, "Wait"); v != nil {
					g.waited[v] = true
				}
			}
			return true
		})
	}
	// Walk every function body looking for spawns, tracking the
	// innermost enclosing function body so Add-before-spawn is scoped
	// to the function that performs the spawn.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g.spawns(fd.Name.Name, fd.Body, fd.Body)
		}
	}
	return g.out
}

type goleakPass struct {
	pkg    *Package
	decls  map[*types.Func]*ast.FuncDecl // same-package function bodies
	waited map[*types.Var]bool           // WaitGroups the package Wait()s on
	signal map[*types.Func]int           // memo for calleeHasSignal: 0 unvisited, 1 in progress/no, 2 yes
	out    []Diagnostic
}

// spawns walks body (the statements of enclosing) and reports orphaned
// go statements. When it meets a nested function literal it recurses
// with that literal as the new enclosing body: an Add in the outer
// function does not license a spawn inside a worker closure.
func (g *goleakPass) spawns(owner string, enclosing *ast.BlockStmt, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			g.spawns(owner, x.Body, x.Body)
			return false
		case *ast.GoStmt:
			g.checkSpawn(owner, enclosing, x)
			// The spawned literal's own body may itself spawn.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				g.spawns(owner, lit.Body, lit.Body)
			}
			return false
		}
		return true
	})
}

// checkSpawn applies the join/signal disciplines to one go statement.
func (g *goleakPass) checkSpawn(owner string, enclosing *ast.BlockStmt, stmt *ast.GoStmt) {
	body, calleeName := g.spawnedBody(stmt.Call)
	adds := g.addsBefore(enclosing, stmt.Pos())
	if body == nil {
		// A spawn we cannot see into: external function or dynamic call.
		for v := range adds {
			if g.waited[v] {
				// The counter is joined; trust the convention that the
				// callee pairs the Done (it cannot be verified here).
				return
			}
		}
		g.out = append(g.out, diag(g.pkg, stmt.Pos(), "goleak",
			"goroutine spawned in %s runs %s, whose body this package cannot analyze, with no Add/Done/Wait'd sync.WaitGroup join; wrap it in a joined closure or waive with //hetvet:ignore goleak <reason>", owner, calleeName))
		return
	}
	for v := range adds {
		if g.waited[v] && g.bodyCallsDone(body, v) {
			return // joined
		}
	}
	if g.hasSignal(body) {
		return // terminates on a lifecycle channel or group drain
	}
	g.out = append(g.out, diag(g.pkg, stmt.Pos(), "goleak",
		"goroutine spawned in %s has no provable shutdown path: no Add-before-spawn/Done/Wait sync.WaitGroup join and no receive on a ctx.Done()/lifecycle channel; add one or waive with //hetvet:ignore goleak <reason>", owner))
}

// spawnedBody resolves the body the go statement runs: a function
// literal's own body, or the declaration body of a same-package
// function or method. The second result names the callee for messages.
func (g *goleakPass) spawnedBody(call *ast.CallExpr) (*ast.BlockStmt, string) {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, "func literal"
	case *ast.Ident:
		if fn, ok := g.pkg.Info.Uses[fun].(*types.Func); ok {
			if fd := g.decls[fn]; fd != nil {
				return fd.Body, fn.Name()
			}
			return nil, fn.FullName()
		}
		return nil, fun.Name
	case *ast.SelectorExpr:
		if fn, ok := g.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := g.decls[fn]; fd != nil {
				return fd.Body, fn.Name()
			}
			return nil, fn.FullName()
		}
		return nil, exprString(fun)
	}
	return nil, "a dynamic call"
}

// addsBefore collects the WaitGroup variables Add'ed in enclosing at a
// position before pos, without descending into nested function
// literals (their Adds happen on another goroutine's schedule).
func (g *goleakPass) addsBefore(enclosing *ast.BlockStmt, pos token.Pos) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	walkNoFuncLit(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		if v := g.waitGroupMethod(call, "Add"); v != nil {
			out[v] = true
		}
		return true
	})
	return out
}

// bodyCallsDone reports whether body calls Done on v, including inside
// deferred closures.
func (g *goleakPass) bodyCallsDone(body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if g.waitGroupMethod(call, "Done") == v {
				found = true
			}
		}
		return true
	})
	return found
}

// waitGroupMethod resolves call as method(...) on a sync.WaitGroup
// variable or field and returns that variable, or nil.
func (g *goleakPass) waitGroupMethod(call *ast.CallExpr, method string) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	t := g.pkg.Info.Types[sel.X].Type
	if t == nil || !isWaitGroup(t) {
		return nil
	}
	return g.varOf(sel.X)
}

// varOf resolves an expression to the variable object it names: a plain
// identifier, or the terminal field of a selector chain.
func (g *goleakPass) varOf(e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := g.pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
		if v, ok := g.pkg.Info.Defs[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s := g.pkg.Info.Selections[x]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := g.pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.ParenExpr:
		return g.varOf(x.X)
	case *ast.StarExpr:
		return g.varOf(x.X)
	}
	return nil
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly behind a
// pointer).
func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// hasSignal reports whether body contains a termination edge: a receive
// from (or range over, or select case on) a lifecycle channel, a wait
// on a WaitGroup the package drains, or a call to a same-package
// function whose body has one. Nested function literals are not
// entered — a signal inside a closure the body launches elsewhere says
// nothing about this goroutine's own loop.
func (g *goleakPass) hasSignal(body *ast.BlockStmt) bool {
	found := false
	walkNoFuncLit(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && g.isLifecycleChan(x.X) {
				found = true
			}
		case *ast.RangeStmt:
			if g.isLifecycleChan(x.X) {
				found = true
			}
		case *ast.CallExpr:
			if v := g.waitGroupMethod(x, "Wait"); v != nil {
				found = true // drain-watcher: terminates when the group drains
				return false
			}
			if g.calleeHasSignal(x) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isLifecycleChan reports whether e is a channel-typed expression that
// carries a shutdown signal: ctx.Done() (any context.Context), or a
// variable/field whose name matches the lifecycle convention.
func (g *goleakPass) isLifecycleChan(e ast.Expr) bool {
	t := g.pkg.Info.Types[e].Type
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if rt := g.pkg.Info.Types[sel.X].Type; rt != nil && isContextType(rt) {
				return true
			}
		}
	case *ast.Ident:
		return shutdownChanName.MatchString(x.Name)
	case *ast.SelectorExpr:
		return shutdownChanName.MatchString(x.Sel.Name)
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// calleeHasSignal reports whether call targets a same-package function
// whose body contains a termination edge (transitively, cycle-guarded).
func (g *goleakPass) calleeHasSignal(call *ast.CallExpr) bool {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = g.pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = g.pkg.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return false
	}
	switch g.signal[fn] {
	case 2:
		return true
	case 1:
		return false // in progress (cycle) or already known negative
	}
	fd := g.decls[fn]
	if fd == nil {
		return false
	}
	g.signal[fn] = 1
	if g.hasSignal(fd.Body) {
		g.signal[fn] = 2
		return true
	}
	return false
}
