// Package analysis is hetvet: a project-specific static-analysis
// driver that machine-checks the invariants this codebase's previous
// PRs established by convention. It is built entirely on the standard
// library (go/parser, go/ast, go/types) — no x/tools dependency — and
// ships eight checkers:
//
//	nilguard    — every exported pointer-receiver method on an
//	              internal/obs instrument or tracer type must begin
//	              with a nil-receiver early return, so disabled
//	              telemetry stays a one-pointer-check no-op.
//	determinism — no wall-clock reads (time.Now / time.Since /
//	              time.Until), no global math/rand, and no iteration
//	              over maps in the packages whose outputs must be
//	              reproducible byte for byte.
//	lockio      — no network I/O, time.Sleep, or channel operations
//	              while a sync mutex is held in internal/directory and
//	              internal/comm (the paper's port model and PR 2's
//	              fallback-ladder work both depend on it).
//	errdiscard  — no "_ =" or bare-call discarding of returned errors
//	              in library code.
//	tracectx    — exported functions in internal/serve and
//	              internal/exec that spawn goroutines or cross the wire
//	              must accept a context.Context, so request traces
//	              survive end to end.
//	goleak      — every goroutine spawned in the concurrent packages
//	              has a provable shutdown path: a WaitGroup
//	              Add/Done/Wait join or a receive on a ctx/done
//	              lifecycle channel (goleak.go).
//	lockorder   — the cross-function lock-acquisition graph over
//	              struct-field and package-level mutexes has no cycles,
//	              no re-acquisition, and no select case locking a mutex
//	              that guards its own channel (lockorder.go).
//	hotpath     — //hetvet:hotpath functions and their transitive
//	              module callees, resolved whole-program, contain no
//	              allocating constructs; -escapes cross-checks the
//	              compiler's escape analysis over the same regions
//	              (hotpath.go, escapes.go).
//
// Every checker honors the escape hatch
//
//	//hetvet:ignore <check-name>[,<check-name>] <reason>
//
// which suppresses the named checks (or "all") on the directive's line
// and, for a directive alone on its line, on the next statement or
// declaration line. The reason is mandatory: an ignore without one is
// itself a diagnostic, as is any malformed or near-miss directive
// (directive.go).
//
// DESIGN.md §9 documents each invariant and why it exists.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the checker that produced it,
// and a human-readable message.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the canonical "file:line: [check] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Check, d.Message)
}

// Checker is one analysis pass. Run inspects a single loaded package
// and returns its findings; the driver applies ignore directives,
// relativizes paths, and sorts.
type Checker interface {
	// Name is the check name used in diagnostics and ignore directives.
	Name() string
	// Desc is a one-line description for -help style output.
	Desc() string
	// Run analyzes one package.
	Run(pkg *Package) []Diagnostic
}

// WholeProgram is implemented by checkers that need to see every
// loaded package before per-package runs begin — e.g. hotpath, whose
// transitive hot set crosses package boundaries. Run calls Prepare
// once, with the full package list, before any Run.
type WholeProgram interface {
	Prepare(pkgs []*Package)
}

// DefaultCheckers returns the full hetvet suite.
func DefaultCheckers() []Checker {
	return []Checker{
		nilguardChecker{},
		determinismChecker{},
		lockioChecker{},
		errdiscardChecker{},
		tracectxChecker{},
		goleakChecker{},
		lockorderChecker{},
		newHotpathChecker(),
	}
}

// checkNames returns the set of valid check names for directive
// validation ("all" is implicitly valid).
func checkNames(checkers []Checker) map[string]bool {
	names := map[string]bool{}
	for _, c := range checkers {
		names[c.Name()] = true
	}
	return names
}

// Run executes every checker over every package, applies ignore
// directives, relativizes file paths against rootDir (best effort), and
// returns the findings sorted by position. Malformed ignore directives
// are reported under the pseudo-check "directive" and cannot be
// suppressed.
func Run(pkgs []*Package, checkers []Checker, rootDir string) []Diagnostic {
	// Directive validity is judged against the full suite, not the
	// selected subset: running -checks=hotpath must not turn every
	// waiver of an unselected check into an unknown-name finding.
	valid := checkNames(append(DefaultCheckers(), checkers...))
	for _, c := range checkers {
		if wp, ok := c.(WholeProgram); ok {
			wp.Prepare(pkgs)
		}
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(pkg, valid)
		out = append(out, bad...)
		for _, c := range checkers {
			for _, d := range c.Run(pkg) {
				if ignores.suppressed(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	for i := range out {
		if rel, err := filepath.Rel(rootDir, out[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			out[i].File = filepath.ToSlash(rel)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return out
}

// WriteText renders one diagnostic per line in the canonical text form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders one JSON object per line (JSON Lines), the
// machine-readable form CI annotations consume.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// diag builds a Diagnostic at a token position.
func diag(pkg *Package, pos token.Pos, check, format string, args ...any) Diagnostic {
	p := pkg.Fset.Position(pos)
	return Diagnostic{File: p.Filename, Line: p.Line, Col: p.Column, Check: check, Message: fmt.Sprintf(format, args...)}
}

// scoped reports whether pkg's import path ends with one of the given
// module-relative suffixes (e.g. "internal/obs"). Matching on suffix
// segments keeps checker scopes stable across the real module and the
// testdata fixture trees, which share the module path.
func scoped(pkg *Package, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkg.Path == s || strings.HasSuffix(pkg.Path, "/"+s) {
			return true
		}
	}
	return false
}

// pathWithin reports whether the package lives under one of the given
// top-level module directories (e.g. "internal", "cmd"). The special
// name "." matches the module root package itself.
func pathWithin(pkg *Package, tops ...string) bool {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, pkg.Module), "/")
	for _, t := range tops {
		if t == "." && rel == "" {
			return true
		}
		if rel == t || strings.HasPrefix(rel, t+"/") {
			return true
		}
	}
	return false
}

// walkNoFuncLit walks the AST rooted at n, calling fn for every node,
// but does not descend into function literals: their bodies execute on
// their own schedule, not at the lexical point being analyzed.
func walkNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
