package analysis

import (
	"strings"
	"testing"
)

// TestParseDirective locks the grammar: one case per verb, per error,
// and per deliberate non-directive.
func TestParseDirective(t *testing.T) {
	cases := []struct {
		text      string
		attempted bool
		verb      string
		names     string // comma-joined
		reason    string
		problem   string // substring of the first problem, "" for valid
	}{
		{"//hetvet:ignore errdiscard write is best effort", true, "ignore", "errdiscard", "write is best effort", ""},
		{"//hetvet:ignore lockio,errdiscard both waived here", true, "ignore", "lockio,errdiscard", "both waived here", ""},
		{"//hetvet:hotpath", true, "hotpath", "", "", ""},
		{"//hetvet:hotpath plan steady state", true, "hotpath", "", "plan steady state", ""},
		{"//hetvet:coldpath growth path", true, "coldpath", "", "growth path", ""},
		{"//hetvet:ignore errdiscard", true, "ignore", "errdiscard", "", "needs a reason"},
		{"//hetvet:ignore", true, "ignore", "", "", "needs a check name and a reason"},
		{"//hetvet:ignore ,errdiscard why", true, "ignore", ",errdiscard", "why", "empty check name"},
		{"//hetvet:coldpath", true, "coldpath", "", "", "needs a reason"},
		{"//hetvet:", true, "", "", "", "missing a verb"},
		{"//hetvet:frobnicate x", true, "frobnicate", "", "", "unknown hetvet directive"},
		{"// hetvet:ignore errdiscard x", true, "", "", "", "must not have a space"},
		{"/*hetvet:ignore errdiscard x*/", true, "", "", "", "must be line comments"},
		{"//HETVET:ignore errdiscard x", true, "", "", "", "lower-case"},
		{"// plain prose about hetvet directives", false, "", "", "", ""},
		{"//\t//hetvet:ignore errdiscard quoted in a doc example", false, "", "", "", ""},
		{"// just a comment", false, "", "", "", ""},
	}
	for _, c := range cases {
		d, attempted, problems := parseDirective(c.text)
		if attempted != c.attempted {
			t.Errorf("%q: attempted = %v, want %v", c.text, attempted, c.attempted)
			continue
		}
		if c.problem == "" && len(problems) > 0 {
			t.Errorf("%q: unexpected problems %q", c.text, problems)
			continue
		}
		if c.problem != "" {
			if len(problems) == 0 || !strings.Contains(problems[0], c.problem) {
				t.Errorf("%q: problems = %q, want one containing %q", c.text, problems, c.problem)
			}
			continue
		}
		if d.Verb != c.verb || strings.Join(d.Names, ",") != c.names || d.Reason != c.reason {
			t.Errorf("%q: parsed {%q %q %q}, want {%q %q %q}",
				c.text, d.Verb, strings.Join(d.Names, ","), d.Reason, c.verb, c.names, c.reason)
		}
	}
}

// FuzzParseDirective pins the parser against panics and against the
// two grammar invariants every caller relies on: a valid directive is
// always attempted, and a problem is only ever reported on an
// attempted directive.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//hetvet:ignore errdiscard reason",
		"//hetvet:ignore a,b,c reason with words",
		"//hetvet:hotpath",
		"//hetvet:coldpath growth",
		"//hetvet:",
		"//hetvet:ignore",
		"// hetvet:ignore x y",
		"/*hetvet:ignore x y*/",
		"//HETVET:IGNORE X Y",
		"// prose",
		"//\t//hetvet:ignore quoted example",
		"//hetvet:ignore \t  spaced,\t x",
		"//hetvet:\x00ignore",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, attempted, problems := parseDirective(text)
		if len(problems) > 0 && !attempted {
			t.Fatalf("%q: problems %q reported without attempted", text, problems)
		}
		if !attempted && (d.Verb != "" || len(d.Names) > 0 || d.Reason != "") {
			t.Fatalf("%q: non-attempted parse returned directive %+v", text, d)
		}
		if attempted && len(problems) == 0 && d.Verb == verbIgnore {
			if len(d.Names) == 0 || d.Reason == "" {
				t.Fatalf("%q: valid ignore directive missing names or reason: %+v", text, d)
			}
		}
	})
}
