package analysis

import (
	"go/ast"
	"go/token"
)

// nilguard enforces the internal/obs contract established in PR 3:
// disabled telemetry must cost one pointer check, which is only true if
// every exported pointer-receiver method on an instrument or tracer
// type begins with a nil-receiver early return. A missing guard turns
// "metrics off" into a nil-pointer panic at the first hot-path hook.
//
// Instrument and tracer types are discovered, not hard-coded: every
// exported named type in internal/obs that has at least one exported
// pointer-receiver method is held to the contract. That is exactly
// {Counter, Gauge, Histogram, Registry, Tracer, Span} today, and any
// instrument added later is covered automatically.
type nilguardChecker struct{}

// nilguardScope lists the packages under the fail-closed contract:
// internal/obs (disabled telemetry must cost one pointer check),
// internal/serve (a nil daemon, server, or client must refuse service
// rather than panic — the overload-safety story includes the
// not-even-constructed case), and internal/calib (disabled
// calibration must be a pointer check returning its input).
var nilguardScope = []string{
	"internal/obs",
	"internal/serve",
	"internal/calib",
}

func (nilguardChecker) Name() string { return "nilguard" }
func (nilguardChecker) Desc() string {
	return "exported pointer-receiver methods in internal/obs and internal/serve must begin with a nil-receiver early return"
}

func (nilguardChecker) Run(pkg *Package) []Diagnostic {
	if !scoped(pkg, nilguardScope...) {
		return nil
	}
	var out []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
				continue
			}
			recvName, typeName, isPtr := receiverInfo(fd)
			if !isPtr || typeName == "" || !ast.IsExported(typeName) {
				continue
			}
			if fd.Body == nil {
				continue
			}
			if recvName == "" || recvName == "_" {
				// A method that never names its receiver cannot
				// dereference it either, but the contract is about the
				// pattern being locally auditable — require the guard.
				out = append(out, diag(pkg, fd.Pos(), "nilguard",
					"method (*%s).%s must name its receiver and begin with a nil-receiver early return",
					typeName, fd.Name.Name))
				continue
			}
			if !beginsWithNilGuard(fd.Body, recvName) {
				out = append(out, diag(pkg, fd.Pos(), "nilguard",
					"exported method (*%s).%s must begin with `if %s == nil { return ... }` so disabled telemetry stays a no-op",
					typeName, fd.Name.Name, recvName))
			}
		}
	}
	return out
}

// receiverInfo extracts the receiver name, base type name, and whether
// the receiver is a pointer.
func receiverInfo(fd *ast.FuncDecl) (recvName, typeName string, isPtr bool) {
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		isPtr = true
		t = star.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		typeName = x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := x.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	}
	return recvName, typeName, isPtr
}

// beginsWithNilGuard reports whether the body's first statement is
// `if recv == nil { ...; return }` (any guarded body whose final
// statement is a return counts, so guards that return zero values or an
// empty trace both qualify).
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return false
	}
	if !isIdentNilPair(bin.X, bin.Y, recv) && !isIdentNilPair(bin.Y, bin.X, recv) {
		return false
	}
	if len(ifStmt.Body.List) == 0 {
		return false
	}
	_, isReturn := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// isIdentNilPair reports whether a is the receiver identifier and b is
// the predeclared nil.
func isIdentNilPair(a, b ast.Expr, recv string) bool {
	ai, ok := a.(*ast.Ident)
	if !ok || ai.Name != recv {
		return false
	}
	bi, ok := b.(*ast.Ident)
	return ok && bi.Name == "nil"
}
