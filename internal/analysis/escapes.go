package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The -escapes mode closes the loop between hetvet's syntactic hotpath
// checker and the compiler's own escape analysis: hetvet knows which
// regions must not allocate (the //hetvet:hotpath roots and their
// transitive module callees), the compiler knows what actually escapes
// to the heap, and this file intersects the two. A construct the
// syntactic rules missed — an append that the compiler cannot prove
// stays in capacity, a variable captured in a way that forces a heap
// move — still surfaces as a diagnostic, pinned to the same hot
// regions the AllocsPerRun benchmarks measure.

// LineRange is a half-open region of lines [Start, End] in one file.
type LineRange struct {
	Start, End int
	Func       string // the hot function occupying the range, for messages
}

// HotRegions computes the file line ranges of every hot-path function:
// the //hetvet:hotpath roots plus their transitive module callees,
// minus //hetvet:coldpath functions. Keys are absolute file paths.
func HotRegions(pkgs []*Package) map[string][]LineRange {
	h := newHotpathChecker()
	h.Prepare(pkgs)
	out := map[string][]LineRange{}
	for fn, root := range h.hot {
		hd := h.decls[fn]
		start := hd.pkg.Fset.Position(hd.decl.Pos())
		end := hd.pkg.Fset.Position(hd.decl.End())
		out[start.Filename] = append(out[start.Filename], LineRange{
			Start: start.Line, End: end.Line, Func: describeHot(fn, root),
		})
	}
	for f := range out {
		rs := out[f]
		sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	}
	return out
}

// escapeLine matches the compiler's escape diagnostics. Lines about
// parameters merely leaking ("leaking param: dst") and non-escapes
// ("does not escape") are not allocations and are filtered by the
// caller.
var escapeLine = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.*)$`)

// EscapeDiagnostics runs `go build -a -gcflags=-m` over the module
// rooted at rootDir and reports every heap allocation the compiler
// found inside a hot region. The -a forces a full recompile so a warm
// build cache cannot swallow the diagnostics. goBin names the go tool
// ("go" to use PATH).
func EscapeDiagnostics(goBin, rootDir string, regions map[string][]LineRange) ([]Diagnostic, error) {
	if goBin == "" {
		goBin = "go"
	}
	cmd := exec.Command(goBin, "build", "-a", "-gcflags=-m", "./...")
	cmd.Dir = rootDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: %s build -gcflags=-m failed: %v\n%s", goBin, err, tail(stderr.String(), 20))
	}
	var out []Diagnostic
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		m := escapeLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(rootDir, file)
		}
		line, err := strconv.Atoi(m[2])
		if err != nil {
			continue // not a position line after all
		}
		col, err := strconv.Atoi(m[3])
		if err != nil {
			continue
		}
		for _, r := range regions[file] {
			if line >= r.Start && line <= r.End {
				out = append(out, Diagnostic{File: file, Line: line, Col: col, Check: "hotpath",
					Message: fmt.Sprintf("escape analysis: %s in hot-path function %s", msg, r.Func)})
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// tail returns the last n lines of s, for compact error reporting.
func tail(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}
