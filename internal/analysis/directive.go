package analysis

import (
	"strings"
)

// hetvet source directives. Three verbs share the //hetvet: namespace:
//
//	//hetvet:ignore <check-name>[,<check-name>...] <reason>
//	//hetvet:hotpath [note]
//	//hetvet:coldpath <reason>
//
// ignore waives named checks (see ignore.go). hotpath marks a function
// as an allocation-free root for the hotpath checker; coldpath excludes
// a function from transitive hotpath traversal (growth paths, dump
// paths — code that allocates by design and never runs on the steady
// state). Reasons are mandatory everywhere a directive waives or
// narrows a check, so the waiver itself documents the exception.
//
// Directive parsing is strict and loud: a malformed directive — a
// near-miss spelling ("// hetvet:ignore" with a space, a /* block */
// form), an unknown verb, a missing reason, an unknown check name — is
// reported under the pseudo-check "directive" instead of being dropped,
// because a directive that silently does nothing is a waiver the reader
// believes in and the tool never honors. FuzzParseDirective pins the
// parser against panics and grammar drift.

// Directive verbs.
const (
	verbIgnore   = "ignore"
	verbHotpath  = "hotpath"
	verbColdpath = "coldpath"
)

// directive is one parsed //hetvet: comment.
type directive struct {
	Verb   string   // ignore, hotpath, coldpath
	Names  []string // ignore only: the checks to suppress
	Reason string   // the mandatory justification (hotpath: optional note)
}

// canonicalPrefix is the only accepted spelling: no space after //,
// lower case, colon immediately after hetvet.
const canonicalPrefix = "//hetvet:"

// parseDirective parses one comment's raw text (including the // or
// /* markers). It returns:
//
//	attempted — the comment is (or tries to be) a hetvet directive;
//	d         — the parsed directive, valid only when problems is empty;
//	problems  — human-readable reasons the directive is malformed.
//
// Comments that merely mention hetvet in prose, and doc comments
// quoting a directive in an indented example ("//\t//hetvet:ignore …"),
// are not attempted directives. Check-name validity is the caller's
// concern (the valid set depends on the configured checkers); the
// parser only enforces the grammar.
func parseDirective(text string) (d directive, attempted bool, problems []string) {
	if strings.HasPrefix(text, canonicalPrefix) {
		return parseCanonical(text[len(canonicalPrefix):])
	}
	// Near-miss detection: strip the comment markers; if what's left
	// begins (after whitespace) with "hetvet:", someone meant to write
	// a directive and got the spelling wrong.
	content := text
	block := false
	switch {
	case strings.HasPrefix(content, "//"):
		content = content[2:]
	case strings.HasPrefix(content, "/*"):
		content = strings.TrimSuffix(content[2:], "*/")
		block = true
	}
	trimmed := strings.TrimSpace(content)
	lower := strings.ToLower(trimmed)
	if !strings.HasPrefix(lower, "hetvet:") {
		return directive{}, false, nil
	}
	switch {
	case block:
		problems = append(problems, "hetvet directives must be line comments (//hetvet:...), not block comments")
	case strings.HasPrefix(trimmed, "hetvet:"):
		problems = append(problems, "hetvet directives must not have a space after // (write //hetvet:...)")
	default:
		problems = append(problems, "hetvet directives are lower-case (write //hetvet:...)")
	}
	return directive{}, true, problems
}

// parseCanonical parses the text after the //hetvet: prefix.
func parseCanonical(rest string) (d directive, attempted bool, problems []string) {
	attempted = true
	// The verb runs to the first whitespace.
	verb := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, rest = rest[:i], strings.TrimLeft(rest[i:], " \t")
	} else {
		rest = ""
	}
	d.Verb = verb
	fields := strings.Fields(rest)
	switch verb {
	case verbIgnore:
		if len(fields) == 0 {
			problems = append(problems, "hetvet:ignore needs a check name and a reason")
			return d, attempted, problems
		}
		d.Names = strings.Split(fields[0], ",")
		for _, n := range d.Names {
			if n == "" {
				problems = append(problems, "hetvet:ignore has an empty check name")
			}
		}
		if len(fields) < 2 {
			problems = append(problems, "hetvet:ignore needs a reason after the check name")
		} else {
			d.Reason = strings.Join(fields[1:], " ")
		}
	case verbHotpath:
		// The note is optional: the annotation is a contract, not a waiver.
		d.Reason = strings.Join(fields, " ")
	case verbColdpath:
		if len(fields) == 0 {
			problems = append(problems, "hetvet:coldpath needs a reason (why this function is off the hot path)")
		} else {
			d.Reason = strings.Join(fields, " ")
		}
	case "":
		problems = append(problems, "hetvet directive is missing a verb (ignore, hotpath, or coldpath)")
	default:
		problems = append(problems, "unknown hetvet directive "+quoteName(verb)+" (valid: ignore, hotpath, coldpath)")
	}
	return d, attempted, problems
}
