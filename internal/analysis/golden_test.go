package analysis

import (
	"bytes"
	"testing"
)

// TestDiagnosticString locks the canonical rendering.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "internal/x/x.go", Line: 7, Col: 3, Check: "lockio", Message: "boom"}
	if got, want := d.String(), "internal/x/x.go:7: [lockio] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestGoldenOutput locks the full text and JSON-lines forms over the
// golden fixture, byte for byte: file paths relative to the module
// root, sorted by position, one finding per line.
func TestGoldenOutput(t *testing.T) {
	root, pkgs := loadFixture(t, "golden")
	diags := Run(pkgs, DefaultCheckers(), root)

	const wantText = `internal/g/g.go:12: [errdiscard] result error of fail is silently discarded; handle it, return it, or annotate why it is unactionable
internal/g/g.go:13: [errdiscard] error from fail discarded with _; handle it, return it, or annotate why it is unactionable
`
	var text bytes.Buffer
	if err := WriteText(&text, diags); err != nil {
		t.Fatal(err)
	}
	if text.String() != wantText {
		t.Errorf("WriteText:\n got: %q\nwant: %q", text.String(), wantText)
	}

	const wantJSON = `{"file":"internal/g/g.go","line":12,"col":2,"check":"errdiscard","message":"result error of fail is silently discarded; handle it, return it, or annotate why it is unactionable"}
{"file":"internal/g/g.go","line":13,"col":2,"check":"errdiscard","message":"error from fail discarded with _; handle it, return it, or annotate why it is unactionable"}
`
	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, diags); err != nil {
		t.Fatal(err)
	}
	if jsonBuf.String() != wantJSON {
		t.Errorf("WriteJSON:\n got: %q\nwant: %q", jsonBuf.String(), wantJSON)
	}
}
