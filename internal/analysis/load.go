package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit every checker
// operates on. Test files (_test.go) are excluded — the invariants
// hetvet enforces are about library code, and tests legitimately use
// wall clocks, global rand, and discarded errors.
type Package struct {
	// Path is the import path, e.g. "hetsched/internal/sched".
	Path string
	// Module is the module path the package belongs to.
	Module string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the loader's shared file set (positions for all packages).
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module using only the
// standard library: go/parser for syntax and go/types with a
// source-level importer for semantics. Module-internal imports are
// resolved against the module tree; everything else is delegated to the
// standard-library source importer.
type Loader struct {
	// RootDir is the absolute module root (the directory with go.mod).
	RootDir string
	// ModulePath is the module's import-path prefix, e.g. "hetsched".
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader creates a loader for the module rooted at rootDir.
func NewLoader(rootDir, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		RootDir:    rootDir,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// ModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns that directory and the module path declared in it.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the given patterns to package directories and loads
// each. Patterns are interpreted relative to the module root: "./..."
// (or "...") loads every package in the module; "./x/y" or "x/y" loads
// one directory; "./x/..." loads a subtree. Directories named
// "testdata", hidden directories, and directories without non-test Go
// files are skipped. Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		switch {
		case pat == "..." || pat == ".":
			// "." alone means the root package; "..." the whole tree.
			if pat == "." {
				dirSet[l.RootDir] = true
				continue
			}
			if err := l.walk(l.RootDir, dirSet); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.RootDir, strings.TrimSuffix(pat, "/..."))
			if err := l.walk(base, dirSet); err != nil {
				return nil, err
			}
		default:
			dirSet[filepath.Join(l.RootDir, pat)] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		names, err := goSourceFiles(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walk collects every package directory under base.
func (l *Loader) walk(base string, dirSet map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goSourceFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirSet[path] = true
		}
		return nil
	})
}

// goSourceFiles lists the non-test Go files in dir that match the
// host build context, sorted. Constraint filtering matters for
// mutually exclusive file pairs (`//go:build race` / `//go:build
// !race`): loading both sides would redeclare their symbols.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := ctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.RootDir)
	}
	return l.ModulePath + "/" + rel, nil
}

// loadDir parses and type-checks the package in dir, memoized by
// import path.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(l.importFor)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Module: l.ModulePath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFor resolves one import: module-internal paths load from the
// module tree, everything else goes to the standard-library importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.RootDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
