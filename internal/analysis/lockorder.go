package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// lockorder extends lockio's mutex tracking from "what happens inside a
// critical section" to "in what order critical sections nest". It
// builds a cross-function lock-acquisition graph over the locks that
// have stable identities — struct-field mutexes (keyed Type.field) and
// package-level mutexes (keyed pkg.var) — and reports:
//
//   - cycles: lock A is acquired while B is held on one path and B
//     while A is held on another (possibly through intermediate calls)
//     — the classic static deadlock candidate;
//   - re-acquisition: a mutex locked while the same mutex is already
//     held on the same path, directly or through a same-package call —
//     sync mutexes are not reentrant, so the path self-deadlocks the
//     first time it executes;
//   - select/lock inversion: a select case that communicates on a
//     channel C and acquires lock L in its body, when elsewhere in the
//     package C is sent or received while L is held — the peer parks
//     inside L's critical section waiting for this select, which is
//     waiting for L.
//
// The analysis is lexical per function (the same source-order
// critical-section tracking lockio uses) with transitive same-package
// call summaries: a call made under lock A contributes edges A → every
// lock the callee may acquire, and the callee's summary includes its
// own callees' acquisitions (fixpoint over the package call graph).
// Function literals are not entered — their bodies run on their own
// goroutine's schedule, so their acquisitions are not ordered against
// the spawning function's held set.
type lockorderChecker struct{}

// lockorderScope: the networked layers plus the telemetry packages —
// everywhere two mutexes with stable identities coexist.
var lockorderScope = []string{
	"internal/directory",
	"internal/comm",
	"internal/exec",
	"internal/serve",
	"internal/obs",
	"cmd/hetpland",
	"cmd/hcload",
	"internal/calib",
}

func (lockorderChecker) Name() string { return "lockorder" }
func (lockorderChecker) Desc() string {
	return "no lock-order cycles, mutex re-acquisition, or select cases that lock a mutex guarding their own channel"
}

func (lockorderChecker) Run(pkg *Package) []Diagnostic {
	if !scoped(pkg, lockorderScope...) {
		return nil
	}
	lp := &lockorderPass{
		pkg:       pkg,
		direct:    map[*types.Func]map[string]token.Pos{},
		calls:     map[*types.Func]map[*types.Func]bool{},
		edges:     map[string]map[string]lockEdge{},
		chanLocks: map[string]map[string]token.Pos{},
		may:       map[*types.Func]map[string]bool{},
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			lp.fn = fn
			lp.fname = fd.Name.Name
			lp.walkStmts(fd.Body.List, nil)
		}
	}
	lp.callEdges()
	lp.reportCycles()
	lp.reportSelectHazards()
	return lp.out
}

// lockEdge is one observed ordering: the edge's target was acquired
// while its source was held, at pos, possibly through a call (via
// names the callee, "" for a direct acquisition).
type lockEdge struct {
	pos token.Pos
	via string
}

type lockorderPass struct {
	pkg   *Package
	fn    *types.Func // function being walked
	fname string

	direct    map[*types.Func]map[string]token.Pos // locks a function acquires directly
	calls     map[*types.Func]map[*types.Func]bool // same-package call graph
	edges     map[string]map[string]lockEdge       // from → to → first witness
	callSites []lockCallSite                       // calls made while locks were held
	selects   []selectSite                         // select clauses to re-check after chanLocks is complete
	chanLocks map[string]map[string]token.Pos      // channel key → locks held at some send/recv on it
	may       map[*types.Func]map[string]bool      // transitive acquisition summaries (memo)
	out       []Diagnostic
}

type lockCallSite struct {
	held   []string
	callee *types.Func
	pos    token.Pos
}

type selectSite struct {
	chanKey string
	clause  *ast.CommClause
}

// walkStmts walks a statement list in source order tracking the held
// lock set (ordered, outermost first). Nested control-flow bodies get a
// copy, matching lockio's lexical model.
func (lp *lockorderPass) walkStmts(list []ast.Stmt, held []string) {
	for _, s := range list {
		switch x := s.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if key, method, ok := lp.lockCall(call); ok {
					switch method {
					case "Lock", "RLock":
						lp.acquire(key, method, call.Pos(), held)
						held = append(held, key)
					case "Unlock", "RUnlock":
						held = removeLock(held, key)
					}
					continue
				}
			}
			lp.scanStmt(s, held)
		case *ast.DeferStmt:
			if key, method, ok := lp.lockCall(x.Call); ok && (method == "Unlock" || method == "RUnlock") {
				_ = key // defer mu.Unlock(): held to function end; nothing to do
				continue
			}
			// Other deferred work runs at return with an unknowable held
			// set; skip it, as lockio does.
		case *ast.GoStmt:
			// The spawned goroutine's acquisitions are not ordered
			// against this one's held set.
		case *ast.BlockStmt:
			lp.walkStmts(x.List, cloneLocks(held))
		case *ast.IfStmt:
			lp.scanOptStmt(x.Init, held)
			lp.scanExpr(x.Cond, held)
			lp.walkStmts(x.Body.List, cloneLocks(held))
			if x.Else != nil {
				lp.walkStmts([]ast.Stmt{x.Else}, cloneLocks(held))
			}
		case *ast.ForStmt:
			lp.scanOptStmt(x.Init, held)
			lp.scanExpr(x.Cond, held)
			lp.scanOptStmt(x.Post, held)
			lp.walkStmts(x.Body.List, cloneLocks(held))
		case *ast.RangeStmt:
			lp.scanExpr(x.X, held)
			lp.walkStmts(x.Body.List, cloneLocks(held))
		case *ast.SwitchStmt:
			lp.scanOptStmt(x.Init, held)
			lp.scanExpr(x.Tag, held)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					lp.walkStmts(cc.Body, cloneLocks(held))
				}
			}
		case *ast.TypeSwitchStmt:
			lp.scanOptStmt(x.Init, held)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					lp.walkStmts(cc.Body, cloneLocks(held))
				}
			}
		case *ast.SelectStmt:
			lp.walkSelect(x, held)
		case *ast.LabeledStmt:
			lp.walkStmts([]ast.Stmt{x.Stmt}, held)
		default:
			lp.scanStmt(s, held)
		}
	}
}

// walkSelect records each communication clause for the select/lock
// inversion check and walks the clause bodies.
func (lp *lockorderPass) walkSelect(sel *ast.SelectStmt, held []string) {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if key := lp.commChanKey(cc.Comm); key != "" {
			lp.selects = append(lp.selects, selectSite{chanKey: key, clause: cc})
		}
		lp.walkStmts(cc.Body, cloneLocks(held))
	}
}

// clauseAcquisitions collects the locks a clause body may acquire,
// directly or through same-package calls. Called only after the whole
// package has been walked, so the transitive summaries are complete.
func (lp *lockorderPass) clauseAcquisitions(body []ast.Stmt, out map[string]token.Pos) {
	for _, s := range body {
		walkNoFuncLit(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, method, ok := lp.lockCall(call); ok && (method == "Lock" || method == "RLock") {
				if _, seen := out[key]; !seen {
					out[key] = call.Pos()
				}
				return true
			}
			if callee := lp.calleeFunc(call); callee != nil {
				for key := range lp.mayAcquire(callee) {
					if _, seen := out[key]; !seen {
						out[key] = call.Pos()
					}
				}
			}
			return true
		})
	}
}

// acquire records one direct lock acquisition: the per-function
// summary, ordering edges from every held lock, and the re-acquisition
// diagnostic when the same key is already held.
func (lp *lockorderPass) acquire(key, method string, pos token.Pos, held []string) {
	if lp.fn != nil {
		m := lp.direct[lp.fn]
		if m == nil {
			m = map[string]token.Pos{}
			lp.direct[lp.fn] = m
		}
		if _, ok := m[key]; !ok {
			m[key] = pos
		}
	}
	for _, h := range held {
		if h == key {
			lp.out = append(lp.out, diag(lp.pkg, pos, "lockorder",
				"%s of %s while %s is already held in %s: sync mutexes are not reentrant, this path self-deadlocks", method, key, key, lp.fname))
			continue
		}
		lp.addEdge(h, key, pos, "")
	}
}

// addEdge records the first witness of an ordering from → to.
func (lp *lockorderPass) addEdge(from, to string, pos token.Pos, via string) {
	m := lp.edges[from]
	if m == nil {
		m = map[string]lockEdge{}
		lp.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = lockEdge{pos: pos, via: via}
	}
}

// scanStmt scans a statement (without held-set mutation) for calls and
// channel operations made under the current held set.
func (lp *lockorderPass) scanStmt(s ast.Stmt, held []string) {
	walkNoFuncLit(s, func(n ast.Node) bool {
		lp.scanNode(n, held)
		return true
	})
}

func (lp *lockorderPass) scanOptStmt(s ast.Stmt, held []string) {
	if s != nil {
		lp.scanStmt(s, held)
	}
}

func (lp *lockorderPass) scanExpr(e ast.Expr, held []string) {
	if e == nil {
		return
	}
	walkNoFuncLit(e, func(n ast.Node) bool {
		lp.scanNode(n, held)
		return true
	})
}

// scanNode classifies one node: a call (summary edges + call graph) or
// a channel operation (guarded-channel index for the select check).
func (lp *lockorderPass) scanNode(n ast.Node, held []string) {
	switch x := n.(type) {
	case *ast.CallExpr:
		if key, method, ok := lp.lockCall(x); ok {
			// An in-expression Lock (rare: condition side effects) still
			// counts as an acquisition for ordering purposes.
			if method == "Lock" || method == "RLock" {
				lp.acquire(key, method, x.Pos(), held)
			}
			return
		}
		callee := lp.calleeFunc(x)
		if callee == nil {
			return
		}
		if lp.fn != nil {
			m := lp.calls[lp.fn]
			if m == nil {
				m = map[*types.Func]bool{}
				lp.calls[lp.fn] = m
			}
			m[callee] = true
		}
		if len(held) > 0 {
			lp.callSites = append(lp.callSites, lockCallSite{held: cloneLocks(held), callee: callee, pos: x.Pos()})
		}
	case *ast.SendStmt:
		lp.recordChanOp(x.Chan, held, x.Pos())
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			lp.recordChanOp(x.X, held, x.Pos())
		}
	}
}

// recordChanOp indexes "channel key → locks held during an operation on
// it", the evidence base for the select inversion check.
func (lp *lockorderPass) recordChanOp(ch ast.Expr, held []string, pos token.Pos) {
	if len(held) == 0 {
		return
	}
	key := lp.chanKey(ch)
	if key == "" {
		return
	}
	m := lp.chanLocks[key]
	if m == nil {
		m = map[string]token.Pos{}
		lp.chanLocks[key] = m
	}
	for _, h := range held {
		if _, ok := m[h]; !ok {
			m[h] = pos
		}
	}
}

// callEdges converts the recorded calls-under-lock into ordering edges
// using the transitive acquisition summaries.
func (lp *lockorderPass) callEdges() {
	for _, cs := range lp.callSites {
		for key := range lp.mayAcquire(cs.callee) {
			for _, h := range cs.held {
				if h == key {
					lp.out = append(lp.out, diag(lp.pkg, cs.pos, "lockorder",
						"call to %s while %s is held, and %s (transitively) locks %s: sync mutexes are not reentrant, this path self-deadlocks", cs.callee.Name(), h, cs.callee.Name(), key))
					continue
				}
				lp.addEdge(h, key, cs.pos, cs.callee.Name())
			}
		}
	}
}

// mayAcquire returns the set of lock keys fn may acquire, directly or
// through same-package callees (memoized, cycle-safe).
func (lp *lockorderPass) mayAcquire(fn *types.Func) map[string]bool {
	if m, ok := lp.may[fn]; ok {
		return m
	}
	m := map[string]bool{}
	lp.may[fn] = m // pre-publish: cycles see the partial set
	for key := range lp.direct[fn] {
		m[key] = true
	}
	for callee := range lp.calls[fn] {
		for key := range lp.mayAcquire(callee) {
			m[key] = true
		}
	}
	return m
}

// reportCycles reports each unordered lock pair that is ordered both
// ways, once, at the lexically first edge of the pair's alphabetically
// first direction.
func (lp *lockorderPass) reportCycles() {
	froms := make([]string, 0, len(lp.edges))
	for f := range lp.edges {
		froms = append(froms, f)
	}
	sort.Strings(froms)
	for _, from := range froms {
		tos := make([]string, 0, len(lp.edges[from]))
		for t := range lp.edges[from] {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if from >= to {
				continue // report each unordered pair once
			}
			if !lp.reachable(to, from, map[string]bool{}) {
				continue
			}
			e := lp.edges[from][to]
			via := ""
			if e.via != "" {
				via = " (via " + e.via + ")"
			}
			back := lp.backWitness(to, from)
			lp.out = append(lp.out, diag(lp.pkg, e.pos, "lockorder",
				"lock order cycle: %s is acquired while %s is held here%s, but %s is also acquired while %s is held%s — two goroutines taking the two orders deadlock", to, from, via, from, to, back))
		}
	}
}

// backWitness renders the position of the reverse ordering when a
// direct reverse edge exists ("" for a multi-hop cycle).
func (lp *lockorderPass) backWitness(from, to string) string {
	if e, ok := lp.edges[from][to]; ok {
		p := lp.pkg.Fset.Position(e.pos)
		return " (at " + shortPath(p.Filename) + ":" + strconv.Itoa(p.Line) + ")"
	}
	return " (through intermediate locks)"
}

// reachable reports whether the edge graph has a path from → to.
func (lp *lockorderPass) reachable(from, to string, seen map[string]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for next := range lp.edges[from] {
		if lp.reachable(next, to, seen) {
			return true
		}
	}
	return false
}

// reportSelectHazards cross-checks each recorded select clause against
// the guarded-channel index.
func (lp *lockorderPass) reportSelectHazards() {
	for _, site := range lp.selects {
		guards := lp.chanLocks[site.chanKey]
		if guards == nil {
			continue
		}
		acquired := map[string]token.Pos{}
		lp.clauseAcquisitions(site.clause.Body, acquired)
		keys := make([]string, 0, len(acquired))
		for k := range acquired {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, lock := range keys {
			guardPos, ok := guards[lock]
			if !ok {
				continue
			}
			p := lp.pkg.Fset.Position(guardPos)
			lp.out = append(lp.out, diag(lp.pkg, acquired[lock], "lockorder",
				"select case on %s acquires %s, but %s is used at %s:%d while %s is held — the peer parks inside the critical section waiting for this select, which waits for the lock", site.chanKey, lock, site.chanKey, shortPath(p.Filename), p.Line, lock))
		}
	}
}

// lockCall classifies call as a Lock/RLock/Unlock/RUnlock on a mutex
// with a stable identity, returning the canonical key.
func (lp *lockorderPass) lockCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	t := lp.pkg.Info.Types[sel.X].Type
	if t == nil || !isSyncMutex(t) {
		return "", "", false
	}
	return lp.lockKey(sel.X), sel.Sel.Name, true
}

// lockKey canonicalizes a mutex (or channel) owner expression:
// Type.field for struct fields, pkg.var for package-level variables,
// func.name for locals (stable within one function, which is all the
// intra-function edges need).
func (lp *lockorderPass) lockKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return lp.lockKey(x.X)
	case *ast.StarExpr:
		return lp.lockKey(x.X)
	case *ast.SelectorExpr:
		if s := lp.pkg.Info.Selections[x]; s != nil {
			recv := s.Recv()
			if ptr, okp := recv.(*types.Pointer); okp {
				recv = ptr.Elem()
			}
			if named, okn := recv.(*types.Named); okn {
				return named.Obj().Name() + "." + x.Sel.Name
			}
			return "?." + x.Sel.Name
		}
		if v, okv := lp.pkg.Info.Uses[x.Sel].(*types.Var); okv && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, okv := lp.pkg.Info.Uses[x].(*types.Var); okv {
			if v.Parent() == lp.pkg.Types.Scope() {
				return lp.pkg.Types.Name() + "." + v.Name()
			}
			return lp.fname + "." + v.Name()
		}
	case *ast.IndexExpr:
		return lp.lockKey(x.X) + "[...]"
	}
	return exprString(e)
}

// chanKey canonicalizes a channel expression the same way, returning
// "" for channels without a stable identity.
func (lp *lockorderPass) chanKey(e ast.Expr) string {
	t := lp.pkg.Info.Types[e].Type
	if t == nil {
		return ""
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return ""
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s := lp.pkg.Info.Selections[x]; s != nil {
			recv := s.Recv()
			if ptr, okp := recv.(*types.Pointer); okp {
				recv = ptr.Elem()
			}
			if named, okn := recv.(*types.Named); okn {
				return named.Obj().Name() + "." + x.Sel.Name
			}
		}
		if v, okv := lp.pkg.Info.Uses[x.Sel].(*types.Var); okv && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, okv := lp.pkg.Info.Uses[x].(*types.Var); okv && v.Parent() == lp.pkg.Types.Scope() {
			return lp.pkg.Types.Name() + "." + v.Name()
		}
	}
	return ""
}

// commChanKey extracts the channel key from a select communication
// statement (send, or receive in an expression/assign statement).
func (lp *lockorderPass) commChanKey(comm ast.Stmt) string {
	switch x := comm.(type) {
	case *ast.SendStmt:
		return lp.chanKey(x.Chan)
	case *ast.ExprStmt:
		if u, ok := x.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return lp.chanKey(u.X)
		}
	case *ast.AssignStmt:
		if len(x.Rhs) == 1 {
			if u, ok := x.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return lp.chanKey(u.X)
			}
		}
	}
	return ""
}

// calleeFunc resolves a call to a same-package named function or
// method (nil otherwise).
func (lp *lockorderPass) calleeFunc(call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = lp.pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = lp.pkg.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() != lp.pkg.Types {
		return nil
	}
	return fn
}

// cloneLocks copies the ordered held set for a nested lexical scope.
func cloneLocks(held []string) []string {
	out := make([]string, len(held))
	copy(out, held)
	return out
}

// removeLock removes every occurrence of key.
func removeLock(held []string, key string) []string {
	out := held[:0]
	for _, h := range held {
		if h != key {
			out = append(out, h)
		}
	}
	return out
}

// shortPath trims a path to its last two segments for messages.
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

