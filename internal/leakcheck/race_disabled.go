//go:build !race

package leakcheck

// RaceEnabled reports that this binary was built without the race
// detector.
const RaceEnabled = false
