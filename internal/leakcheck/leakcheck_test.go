package leakcheck

import (
	"sync"
	"testing"
)

// TestCheckPassesOnJoinedGoroutines pins the harness's happy path: a
// scenario that spawns and joins workers settles back to the baseline.
func TestCheckPassesOnJoinedGoroutines(t *testing.T) {
	Check(t, func() {
		var wg sync.WaitGroup
		ch := make(chan int)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range ch {
				}
			}()
		}
		close(ch)
		wg.Wait()
	})
}

// TestCheckToleratesAlreadySignalled pins the retry-settle: a
// goroutine that has been signalled to exit but not yet descheduled
// when the scenario returns must not trip the check.
func TestCheckToleratesAlreadySignalled(t *testing.T) {
	Check(t, func() {
		done := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			<-done
			close(exited)
		}()
		close(done)
		// Do not wait for exited: the goroutine may still be live at
		// return, and the settle loop must absorb it.
		_ = exited
	})
}
