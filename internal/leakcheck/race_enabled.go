//go:build race

package leakcheck

// RaceEnabled reports that this binary was built with the race
// detector. Leak checks still run under race — that is when shutdown
// ordering bugs surface — but the settle window is doubled because
// instrumented goroutines unwind slower.
const RaceEnabled = true
