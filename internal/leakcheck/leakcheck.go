// Package leakcheck is the runtime goroutine-leak harness for tests:
// it snapshots runtime.NumGoroutine before a scenario, runs it, and
// retry-settles afterwards until the count returns to the baseline or
// a deadline passes. It confirms at runtime what the static goleak
// checker proves about shutdown paths — the two gates pin the same
// property from both sides, like hetvet's hotpath checker and the
// AllocsPerRun tests do for allocations.
//
// The count-based check is deliberately one-sided: goroutines that
// finish *during* the scenario can mask a leak of equal size, and
// unrelated test goroutines (timers, the race detector's workers)
// can inflate the baseline. The retry-settle loop absorbs the benign
// case — goroutines that have been signalled but not yet descheduled —
// and on failure the full stack dump names the survivors, so a tripped
// check is always diagnosable.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

const (
	// settleWait bounds how long Check waits for spawned goroutines to
	// unwind after the scenario returns. Shutdown paths in this repo
	// are all join-based (WaitGroup or lifecycle channel), so anything
	// still running seconds later is leaked, not slow.
	settleWait = 5 * time.Second
	// settleStep is the poll interval while waiting.
	settleStep = 2 * time.Millisecond
)

// Check runs fn and fails t when goroutines spawned inside fn outlive
// it. The scenario must tear down everything it starts (call Close,
// Shutdown, cancel its contexts) before returning; Check only verifies
// that the teardown actually joined the goroutines. Under the race
// detector the settle window doubles — race-instrumented goroutines
// unwind noticeably slower.
func Check(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	wait := settleWait
	if RaceEnabled {
		wait *= 2
	}
	deadline := time.Now().Add(wait)
	var after int
	for {
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(settleStep)
	}
	t.Errorf("leakcheck: %d goroutines before scenario, %d still running after %v settle (%d leaked); all stacks:\n%s",
		before, after, wait, after-before, stacks())
}

// stacks renders every live goroutine's stack, for the failure report.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return string(buf[:n])
}
