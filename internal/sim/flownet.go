package sim

import (
	"fmt"

	"hetsched/internal/netmodel"
)

// Dynamic shared-link bandwidth division. Section 3.1 of the paper:
// "if the paths between two distinct node pairs share a common link,
// the bandwidth of the common link is divided among these
// communicating pairs." netmodel.Topology.SharedPerf applies that rule
// to a static flow set; TopologyNetwork applies it during execution:
// the engine announces flow starts and ends, and each transfer's
// duration is computed from the link shares in effect at its start
// (and held for its lifetime — the same freeze-at-start simplification
// the piecewise network uses).

// FlowAware is an optional Network extension. When the exclusive
// engine sees it, it brackets every transfer with BeginFlow/EndFlow so
// the network can track concurrent flows.
type FlowAware interface {
	Network
	// BeginFlow announces that a transfer src→dst starts at time now.
	// The engine calls it before querying TransferTime for that
	// transfer, so the flow counts toward its own sharing.
	BeginFlow(src, dst int, now float64)
	// EndFlow announces that the transfer completed.
	EndFlow(src, dst int, now float64)
}

// TopologyNetwork is a FlowAware network over a routed multi-site
// topology: concurrent flows crossing a common link split its
// bandwidth equally.
type TopologyNetwork struct {
	topo   *netmodel.Topology
	paths  map[[2]int][]netmodel.Link
	active map[string]int // link name -> concurrent flow count
}

// NewTopologyNetwork precomputes all pairwise routes. It fails if any
// host pair is unroutable.
func NewTopologyNetwork(topo *netmodel.Topology) (*TopologyNetwork, error) {
	t := &TopologyNetwork{
		topo:   topo,
		paths:  make(map[[2]int][]netmodel.Link),
		active: make(map[string]int),
	}
	n := topo.Hosts()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			path, err := topo.Path(i, j)
			if err != nil {
				return nil, fmt.Errorf("sim: topology network: %w", err)
			}
			t.paths[[2]int{i, j}] = path
		}
	}
	return t, nil
}

// N implements Network.
func (t *TopologyNetwork) N() int { return t.topo.Hosts() }

// TransferTime implements Network: the path latency plus the size over
// the bottleneck share, where every link's bandwidth is divided by the
// number of flows currently crossing it (at least one, this flow).
func (t *TopologyNetwork) TransferTime(src, dst int, size int64, _ float64) float64 {
	if src == dst {
		return 0
	}
	path := t.paths[[2]int{src, dst}]
	latency := 0.0
	bottleneck := 0.0
	first := true
	for _, l := range path {
		latency += l.Latency
		share := float64(t.active[l.Name])
		if share < 1 {
			share = 1
		}
		bw := l.Bandwidth / share
		if first || bw < bottleneck {
			bottleneck = bw
			first = false
		}
	}
	if size <= 0 {
		return latency
	}
	return latency + float64(size)/bottleneck
}

// BeginFlow implements FlowAware.
func (t *TopologyNetwork) BeginFlow(src, dst int, _ float64) {
	for _, l := range t.paths[[2]int{src, dst}] {
		t.active[l.Name]++
	}
}

// EndFlow implements FlowAware.
func (t *TopologyNetwork) EndFlow(src, dst int, _ float64) {
	for _, l := range t.paths[[2]int{src, dst}] {
		if t.active[l.Name] > 0 {
			t.active[l.Name]--
		}
	}
}

// ActiveFlows reports the current flow count on a link, for tests and
// instrumentation.
func (t *TopologyNetwork) ActiveFlows(linkName string) int { return t.active[linkName] }
