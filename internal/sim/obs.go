package sim

import (
	"fmt"
	"sync/atomic"

	"hetsched/internal/obs"
)

// Telemetry wiring. The sim package exposes free functions rather than
// an object, so its telemetry is process-wide: SetTelemetry installs a
// registry/tracer pair behind an atomic pointer, and the execution
// loops load it once per run. With nothing installed (the default) the
// hooks reduce to one pointer load.

// simTelemetry holds the resolved instruments for the execution loops.
type simTelemetry struct {
	tracer      *obs.Tracer
	checkpoints *obs.Counter
	replans     *obs.Counter
}

var simTel atomic.Pointer[simTelemetry]

// SetTelemetry wires the simulator's checkpoint/replan instruments to
// reg and tr (either may be nil). Passing nil for both disables
// telemetry again. Checkpoint and replan trace instants are stamped in
// simulated time — seconds on the Schedule timeline, rendered as
// microseconds — so they line up with TraceSchedule's tracks when both
// are written to the same tracer.
func SetTelemetry(reg *obs.Registry, tr *obs.Tracer) {
	if reg == nil && tr == nil {
		simTel.Store(nil)
		return
	}
	t := &simTelemetry{tracer: tr}
	if reg != nil {
		t.checkpoints = reg.Counter(obs.MetricSimCheckpoints,
			"Checkpoints taken during checkpointed or reactive execution.")
		t.replans = reg.Counter(obs.MetricSimReplans,
			"Checkpoints at which the remaining tail was replanned.")
	}
	simTel.Store(t)
}

// noteCheckpoint records one checkpoint at simulated time `when`
// (seconds) with the number of undispatched events remaining.
func (t *simTelemetry) noteCheckpoint(kind string, when float64, remaining int) {
	if t == nil {
		return
	}
	t.checkpoints.Inc()
	t.tracer.InstantAt("control", "checkpoint", when*1e6,
		obs.L("kind", kind), obs.L("remaining", fmt.Sprintf("%d", remaining)))
}

// noteReplan records that the tail was rescheduled at simulated time
// `when` (seconds).
func (t *simTelemetry) noteReplan(kind string, when float64, remaining int) {
	if t == nil {
		return
	}
	t.replans.Inc()
	t.tracer.InstantAt("control", "replan", when*1e6,
		obs.L("kind", kind), obs.L("remaining", fmt.Sprintf("%d", remaining)))
}
