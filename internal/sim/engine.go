package sim

import (
	"container/heap"
	"fmt"

	"hetsched/internal/timing"
)

// This file implements the execution engine for the paper's base
// communication model (Section 3.2): a processor participates in at
// most one send and one receive at a time, and when several senders
// contend for one receiver their messages are serialized in the order
// the control messages arrive (first come, first served; ties broken
// by sender id). Senders walk their plan's destination list in order,
// blocking while the next destination is busy — exactly the
// control-message/acknowledgement protocol the paper describes.

// State carries processor availability across engine phases, letting
// checkpointed executions resume without inserting a barrier.
type State struct {
	SendFree []float64 // earliest time each sender may start a send
	RecvFree []float64 // earliest time each receiver may start a receive
}

// NewState returns a State with all processors available at time 0.
func NewState(n int) *State {
	return &State{SendFree: make([]float64, n), RecvFree: make([]float64, n)}
}

// Clone deep-copies the state.
func (st *State) Clone() *State {
	return &State{
		SendFree: append([]float64(nil), st.SendFree...),
		RecvFree: append([]float64(nil), st.RecvFree...),
	}
}

// ExecResult reports one engine run.
type ExecResult struct {
	// Schedule holds the executed events with their actual times.
	Schedule *timing.Schedule
	// Finish is the time the last executed event completed (0 when
	// nothing ran).
	Finish float64
	// Remaining holds sends that were not dispatched because the
	// dispatch budget ran out; nil when the plan completed.
	Remaining *Plan
	// State is processor availability after the run, for resumption.
	State *State
	// Dispatched counts transfers started during this run.
	Dispatched int
}

// event kinds, ordered so simultaneous events process deterministically:
// transfer completions before fresh sender arrivals at the same instant,
// so that already-queued waiters win ties, mirroring the
// acknowledgement protocol.
const (
	evTransferEnd = iota
	evRecvAvail
	evSenderReady
)

type event struct {
	time float64
	kind int
	src  int
	dst  int // receiver for transferEnd; unused for senderReady
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].time != h[b].time {
		return h[a].time < h[b].time
	}
	if h[a].kind != h[b].kind {
		return h[a].kind < h[b].kind
	}
	if h[a].src != h[b].src {
		return h[a].src < h[b].src
	}
	return h[a].dst < h[b].dst
}
func (h eventHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// waiter is a queued receive request.
type waiter struct {
	reqTime float64
	sender  int
}

// Run executes the whole plan on the network under the base model,
// starting from an all-idle state.
func Run(net Network, plan *Plan) (*ExecResult, error) {
	return RunBudget(net, plan, nil, -1)
}

// RunBudget executes at most budget transfers of the plan (all of them
// when budget < 0), starting from st (all-idle when nil). In-flight
// transfers always complete; senders whose next transfer was not
// dispatched appear in Remaining.
func RunBudget(net Network, plan *Plan, st *State, budget int) (*ExecResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if net.N() != plan.N {
		return nil, fmt.Errorf("sim: network has %d processors, plan %d", net.N(), plan.N)
	}
	n := plan.N
	if st == nil {
		st = NewState(n)
	}
	if len(st.SendFree) != n || len(st.RecvFree) != n {
		return nil, fmt.Errorf("sim: state shape mismatch")
	}

	idx := make([]int, n) // next unqueued destination per sender
	recvFree := append([]float64(nil), st.RecvFree...)
	queues := make([][]waiter, n) // waiting senders per receiver
	waiting := make([]bool, n)    // sender currently queued at a receiver
	inFlight := make([]int, n)    // transfers currently headed to each receiver
	woken := make([]bool, n)      // a receiver-available wake event is pending
	out := &timing.Schedule{N: n}
	dispatched := 0
	finish := 0.0

	h := &eventHeap{}
	for i := 0; i < n; i++ {
		if len(plan.Order[i]) > 0 {
			heap.Push(h, event{time: st.SendFree[i], kind: evSenderReady, src: i})
		}
	}
	sendFree := append([]float64(nil), st.SendFree...)

	flowNet, _ := net.(FlowAware)

	// start begins the transfer i→j at time t. The caller has verified
	// receiver j is free.
	start := func(i, j int, t float64) {
		if flowNet != nil {
			flowNet.BeginFlow(i, j, t)
		}
		d := net.TransferTime(i, j, plan.Sizes.At(i, j), t)
		e := timing.Event{Src: i, Dst: j, Start: t, Finish: t + d}
		out.Events = append(out.Events, e)
		if e.Finish > finish {
			finish = e.Finish
		}
		sendFree[i] = e.Finish
		recvFree[j] = e.Finish
		dispatched++
		inFlight[j]++
		heap.Push(h, event{time: e.Finish, kind: evTransferEnd, src: i, dst: j})
	}

	// request is sender i asking to send its next destination at time t.
	request := func(i int, t float64) {
		if idx[i] >= len(plan.Order[i]) {
			return
		}
		if budget >= 0 && dispatched >= budget {
			return // budget exhausted: leave the send for a later phase
		}
		j := plan.Order[i][idx[i]]
		if recvFree[j] <= t && len(queues[j]) == 0 {
			idx[i]++
			start(i, j, t)
			return
		}
		queues[j] = append(queues[j], waiter{reqTime: t, sender: i})
		waiting[i] = true
		// A receiver inherited busy from a previous phase has no
		// in-flight transfer here to wake its queue; schedule one.
		if inFlight[j] == 0 && !woken[j] {
			woken[j] = true
			heap.Push(h, event{time: recvFree[j], kind: evRecvAvail, dst: j})
		}
	}

	// grant hands receiver j to the earliest waiting request: smallest
	// request time, ties by sender id (FIFO acknowledgement order).
	grant := func(j int, t float64) {
		if len(queues[j]) == 0 || (budget >= 0 && dispatched >= budget) {
			return
		}
		best := 0
		for k := 1; k < len(queues[j]); k++ {
			w, b := queues[j][k], queues[j][best]
			if w.reqTime < b.reqTime || (w.reqTime == b.reqTime && w.sender < b.sender) {
				best = k
			}
		}
		w := queues[j][best]
		queues[j] = append(queues[j][:best], queues[j][best+1:]...)
		waiting[w.sender] = false
		idx[w.sender]++
		start(w.sender, j, t)
	}

	for h.Len() > 0 {
		ev := heap.Pop(h).(event)
		switch ev.kind {
		case evSenderReady:
			request(ev.src, ev.time)
		case evRecvAvail:
			woken[ev.dst] = false
			grant(ev.dst, ev.time)
		case evTransferEnd:
			inFlight[ev.dst]--
			if flowNet != nil {
				flowNet.EndFlow(ev.src, ev.dst, ev.time)
			}
			// Receiver grant first, then the freed sender's next request,
			// so already-queued waiters win ties at the same instant.
			grant(ev.dst, ev.time)
			if !waiting[ev.src] {
				request(ev.src, ev.time)
			}
		}
	}

	res := &ExecResult{
		Schedule:   out,
		Finish:     finish,
		Dispatched: dispatched,
		State:      &State{SendFree: sendFree, RecvFree: recvFree},
	}
	// Collect undispatched sends (queued waiters have not advanced idx,
	// so slicing at idx covers them too).
	rem := &Plan{N: n, Sizes: plan.Sizes.Clone(), Order: make([][]int, n)}
	left := 0
	for i := 0; i < n; i++ {
		rem.Order[i] = append([]int(nil), plan.Order[i][idx[i]:]...)
		left += len(rem.Order[i])
	}
	if left > 0 {
		res.Remaining = rem
	}
	return res, nil
}
