package sim

import (
	"container/heap"
	"fmt"
	"math"

	"hetsched/internal/timing"
)

// Section 6.1 model enhancements. The base model serializes receives;
// the paper sketches two relaxations, both implemented here:
//
//   - Interleaved receives: multithreaded communication (as in Nexus)
//     lets a node receive several messages at once at the price of a
//     context-switch overhead α. The paper's calibration point is that
//     two messages received simultaneously take (1+α)(t1+t2) in total.
//     We realize this as processor sharing: when k ≥ 2 receives are
//     active at a node, they share an aggregate service rate 1/(1+α)
//     equally; a lone receive proceeds at full rate. For equal-length
//     simultaneous messages this matches the paper's formula exactly;
//     for unequal lengths it interpolates between it and ideal
//     processor sharing (see DESIGN.md).
//
//   - Finite receive buffers: a sender only waits until its message is
//     stored in the receiver's buffer, not until the application-level
//     receive completes. The wire transfer occupies the sender for the
//     modelled duration; the application receive occupies the receiver
//     for the same duration, drained FIFO from the buffer. When the
//     receiver is idle with an empty buffer the transfer cuts through
//     (sender and receiver overlap as in the base model). A sender
//     blocks while the buffer is full.

// RunInterleaved executes the plan under the interleaved-receive model
// with context-switch overhead alpha ≥ 0. Receivers accept any number
// of concurrent messages; there is no receive queueing. The returned
// schedule's events carry each message's sender-occupancy interval
// (start of transmission to completion of the shared receive); they
// intentionally do not satisfy the base model's receiver exclusivity.
func RunInterleaved(net Network, plan *Plan, alpha float64) (*ExecResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if net.N() != plan.N {
		return nil, fmt.Errorf("sim: network has %d processors, plan %d", net.N(), plan.N)
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("sim: invalid alpha %v", alpha)
	}
	n := plan.N

	type msg struct {
		src, dst  int
		start     float64
		remaining float64 // seconds of solo-rate service left
	}
	var active []*msg
	perRecv := make([]int, n) // active receive count per node

	rate := func(dst int) float64 {
		k := perRecv[dst]
		if k <= 1 {
			return 1
		}
		return 1 / ((1 + alpha) * float64(k))
	}

	idx := make([]int, n)
	ready := &eventHeap{}
	for i := 0; i < n; i++ {
		if len(plan.Order[i]) > 0 {
			heap.Push(ready, event{time: 0, kind: evSenderReady, src: i})
		}
	}

	out := &timing.Schedule{N: n}
	now := 0.0
	finish := 0.0
	dispatched := 0

	advance := func(to float64) {
		dt := to - now
		if dt > 0 {
			for _, m := range active {
				m.remaining -= dt * rate(m.dst)
			}
		}
		now = to
	}
	nextCompletion := func() (float64, int) {
		best, bi := math.Inf(1), -1
		for i, m := range active {
			t := now + m.remaining/rate(m.dst)
			if t < best || (t == best && (m.src < active[bi].src || (m.src == active[bi].src && m.dst < active[bi].dst))) {
				best, bi = t, i
			}
		}
		return best, bi
	}

	for len(active) > 0 || ready.Len() > 0 {
		tc, ci := nextCompletion()
		if ready.Len() > 0 {
			ev := (*ready)[0]
			if ci < 0 || ev.time <= tc {
				heap.Pop(ready)
				advance(ev.time)
				i := ev.src
				if idx[i] < len(plan.Order[i]) {
					j := plan.Order[i][idx[i]]
					idx[i]++
					d := net.TransferTime(i, j, plan.Sizes.At(i, j), now)
					active = append(active, &msg{src: i, dst: j, start: now, remaining: d})
					perRecv[j]++
					dispatched++
				}
				continue
			}
		}
		if ci < 0 {
			break
		}
		advance(tc)
		m := active[ci]
		active = append(active[:ci], active[ci+1:]...)
		perRecv[m.dst]--
		out.Events = append(out.Events, timing.Event{Src: m.src, Dst: m.dst, Start: m.start, Finish: now})
		if now > finish {
			finish = now
		}
		if idx[m.src] < len(plan.Order[m.src]) {
			heap.Push(ready, event{time: now, kind: evSenderReady, src: m.src})
		}
	}

	st := NewState(n)
	for i := 0; i < n; i++ {
		st.SendFree[i] = finish
		st.RecvFree[i] = finish
	}
	return &ExecResult{Schedule: out, Finish: finish, Dispatched: dispatched, State: st}, nil
}

// RunBuffered executes the plan under the finite-buffer model with the
// given per-receiver buffer capacity (in messages, ≥ 1). The returned
// schedule's events carry the wire-transfer intervals (the sender's
// occupancy); application receives are tracked internally for the
// completion time.
func RunBuffered(net Network, plan *Plan, capacity int) (*ExecResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if net.N() != plan.N {
		return nil, fmt.Errorf("sim: network has %d processors, plan %d", net.N(), plan.N)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("sim: buffer capacity %d, want ≥ 1", capacity)
	}
	n := plan.N

	type bufMsg struct {
		src      int
		duration float64
	}
	appFree := make([]float64, n)   // application receive availability
	buffered := make([][]bufMsg, n) // FIFO buffer contents per receiver
	inFlight := make([]int, n)      // wire transfers headed to the receiver
	direct := make([]bool, n)       // receiver currently in a cut-through receive
	queues := make([][]waiter, n)   // senders blocked on a full buffer
	waiting := make([]bool, n)
	idx := make([]int, n)

	out := &timing.Schedule{N: n}
	finish := 0.0
	dispatched := 0

	const (
		evWireEnd = evSenderReady + 1 // distinct from the engine's event kinds
		evAppEnd  = evSenderReady + 2
	)
	h := &eventHeap{}
	for i := 0; i < n; i++ {
		if len(plan.Order[i]) > 0 {
			heap.Push(h, event{time: 0, kind: evSenderReady, src: i})
		}
	}

	bump := func(t float64) {
		if t > finish {
			finish = t
		}
	}

	// admit and startApp are mutually recursive: draining a buffer slot
	// admits a blocked sender, and admitting can trigger a drain.
	var admit func(j int, t float64)

	// startApp begins the application receive of the next buffered
	// message at receiver j, if any and if the application is idle.
	var startApp func(j int, t float64)
	startApp = func(j int, t float64) {
		if direct[j] || appFree[j] > t || len(buffered[j]) == 0 {
			return
		}
		m := buffered[j][0]
		buffered[j] = buffered[j][1:]
		appFree[j] = t + m.duration
		bump(appFree[j])
		heap.Push(h, event{time: appFree[j], kind: evAppEnd, src: m.src, dst: j})
		// Draining freed a buffer slot: admit a blocked sender.
		admit(j, t)
	}

	// slotsUsed counts occupied and reserved buffer slots at j.
	slotsUsed := func(j int) int { return len(buffered[j]) + inFlight[j] }

	startWire := func(i, j int, t float64) {
		d := net.TransferTime(i, j, plan.Sizes.At(i, j), t)
		out.Events = append(out.Events, timing.Event{Src: i, Dst: j, Start: t, Finish: t + d})
		bump(t + d)
		dispatched++
		if !direct[j] && appFree[j] <= t && len(buffered[j]) == 0 {
			// Cut-through: application receives as the data arrives.
			direct[j] = true
			appFree[j] = t + d
			heap.Push(h, event{time: t + d, kind: evAppEnd, src: i, dst: j})
		} else {
			inFlight[j]++
			heap.Push(h, event{time: t + d, kind: evWireEnd, src: i, dst: j})
		}
	}

	request := func(i int, t float64) {
		if idx[i] >= len(plan.Order[i]) {
			return
		}
		j := plan.Order[i][idx[i]]
		canDirect := !direct[j] && appFree[j] <= t && len(buffered[j]) == 0 && inFlight[j] == 0 && len(queues[j]) == 0
		if canDirect || (slotsUsed(j) < capacity && len(queues[j]) == 0) {
			idx[i]++
			startWire(i, j, t)
			return
		}
		queues[j] = append(queues[j], waiter{reqTime: t, sender: i})
		waiting[i] = true
	}

	admit = func(j int, t float64) {
		for len(queues[j]) > 0 && slotsUsed(j) < capacity {
			best := 0
			for k := 1; k < len(queues[j]); k++ {
				w, b := queues[j][k], queues[j][best]
				if w.reqTime < b.reqTime || (w.reqTime == b.reqTime && w.sender < b.sender) {
					best = k
				}
			}
			w := queues[j][best]
			queues[j] = append(queues[j][:best], queues[j][best+1:]...)
			waiting[w.sender] = false
			idx[w.sender]++
			startWire(w.sender, j, t)
		}
	}

	for h.Len() > 0 {
		ev := heap.Pop(h).(event)
		switch ev.kind {
		case evSenderReady:
			request(ev.src, ev.time)
		case evWireEnd:
			j := ev.dst
			inFlight[j]--
			d := lastDuration(out, ev.src, j)
			buffered[j] = append(buffered[j], bufMsg{src: ev.src, duration: d})
			startApp(j, ev.time)
			if !waiting[ev.src] {
				request(ev.src, ev.time)
			}
		case evAppEnd:
			j := ev.dst
			if direct[j] {
				direct[j] = false
				if !waiting[ev.src] {
					request(ev.src, ev.time)
				}
			}
			startApp(j, ev.time)
			admit(j, ev.time)
		}
	}

	st := NewState(n)
	for i := 0; i < n; i++ {
		st.SendFree[i] = finish
		st.RecvFree[i] = finish
	}
	return &ExecResult{Schedule: out, Finish: finish, Dispatched: dispatched, State: st}, nil
}

// lastDuration finds the duration of the most recent wire event i→j.
func lastDuration(s *timing.Schedule, i, j int) float64 {
	for k := len(s.Events) - 1; k >= 0; k-- {
		e := s.Events[k]
		if e.Src == i && e.Dst == j {
			return e.Duration()
		}
	}
	return 0
}
