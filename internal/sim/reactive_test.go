package sim

import (
	"testing"

	"hetsched/internal/model"
	"hetsched/internal/netmodel"
	"hetsched/internal/sched"
)

// totalExchangePlan schedules a full exchange with open shop and turns
// it into an executable plan.
func totalExchangePlan(t *testing.T, perf *netmodel.Perf, size int64) *Plan {
	t.Helper()
	sizes := model.UniformSizes(perf.N(), size)
	m, err := model.Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.NewOpenShop().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(res.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestRunReactiveNoFaultsKeepsOrder(t *testing.T) {
	perf := netmodel.Gusto()
	plan := totalExchangePlan(t, perf, 1<<20)
	net := NewStatic(perf)
	observe := func(float64) *netmodel.Perf { return perf.Clone() }

	base, err := Run(net, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunReactive(net, observe, nil, plan, EveryEvents{K: 5}, ReplanOpenShop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 0 {
		t.Errorf("replanned %d times with no fault events", res.Replans)
	}
	if res.Checkpoints == 0 {
		t.Error("no checkpoints under EveryEvents")
	}
	if res.Finish != base.Finish {
		t.Errorf("fault-free reactive run finished at %g, plain run at %g", res.Finish, base.Finish)
	}
	if len(res.Schedule.Events) != plan.Events() {
		t.Errorf("executed %d events, plan has %d", len(res.Schedule.Events), plan.Events())
	}
}

func TestRunReactiveReplansOnFault(t *testing.T) {
	perf := netmodel.Gusto()
	plan := totalExchangePlan(t, perf, 1<<20)

	// Degrade one link tenfold partway through the fault-free makespan.
	base, err := Run(NewStatic(perf), plan)
	if err != nil {
		t.Fatal(err)
	}
	when := base.Finish / 3
	after := perf.Clone()
	pp := after.At(0, 1)
	pp.Bandwidth /= 10
	after.Set(0, 1, pp)
	pw, err := NewPiecewise([]Epoch{{Start: 0, Perf: perf}, {Start: when, Perf: after}})
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunReactive(pw, pw.At, []float64{when}, plan, EveryEvents{K: 4}, ReplanOpenShop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 1 {
		t.Errorf("replans = %d, want exactly 1 (one fault event)", res.Replans)
	}
	if res.Checkpoints < res.Replans {
		t.Errorf("checkpoints %d < replans %d", res.Checkpoints, res.Replans)
	}
	if len(res.Schedule.Events) != plan.Events() {
		t.Errorf("executed %d events, plan has %d", len(res.Schedule.Events), plan.Events())
	}
	if err := res.Schedule.Validate(nil); err != nil {
		t.Errorf("executed schedule violates constraints: %v", err)
	}
	// Events at or before t=0 are pre-run conditions, never triggers.
	res0, err := RunReactive(NewStatic(perf), func(float64) *netmodel.Perf { return perf.Clone() },
		[]float64{-1, 0}, plan, EveryEvents{K: 4}, ReplanOpenShop)
	if err != nil {
		t.Fatal(err)
	}
	if res0.Replans != 0 {
		t.Errorf("pre-run events triggered %d replans", res0.Replans)
	}
}
