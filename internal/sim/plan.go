package sim

import (
	"fmt"
	"sort"

	"hetsched/internal/model"
	"hetsched/internal/timing"
)

// Plan is what a scheduler hands the execution engine: for every
// sender, the order in which it will perform its sends. The engine
// supplies the timing; receive contention is resolved at run time.
type Plan struct {
	N     int
	Order [][]int // Order[i] lists destination processors for sender i, in send order
	Sizes *model.Sizes
}

// Validate checks shape, ranges, and that no sender repeats a
// destination.
func (p *Plan) Validate() error {
	if len(p.Order) != p.N {
		return fmt.Errorf("sim: plan has %d sender lists, want %d", len(p.Order), p.N)
	}
	if p.Sizes == nil || p.Sizes.N() != p.N {
		return fmt.Errorf("sim: plan sizes missing or wrong shape")
	}
	for i, dsts := range p.Order {
		seen := make(map[int]bool, len(dsts))
		for _, j := range dsts {
			if j < 0 || j >= p.N || j == i {
				return fmt.Errorf("sim: sender %d has invalid destination %d", i, j)
			}
			if seen[j] {
				return fmt.Errorf("sim: sender %d lists destination %d twice", i, j)
			}
			seen[j] = true
		}
	}
	return nil
}

// Events returns the total number of sends in the plan.
func (p *Plan) Events() int {
	n := 0
	for _, dsts := range p.Order {
		n += len(dsts)
	}
	return n
}

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	c := &Plan{N: p.N, Sizes: p.Sizes.Clone(), Order: make([][]int, len(p.Order))}
	for i, dsts := range p.Order {
		c.Order[i] = append([]int(nil), dsts...)
	}
	return c
}

// PlanFromSchedule extracts per-sender send orders from a timed
// schedule: each sender's events sorted by planned start time (ties by
// destination id). The planned times themselves are discarded — the
// engine rediscovers them under its own network and arbitration.
func PlanFromSchedule(s *timing.Schedule, sizes *model.Sizes) (*Plan, error) {
	if sizes.N() != s.N {
		return nil, fmt.Errorf("sim: schedule is for %d processors, sizes for %d", s.N, sizes.N())
	}
	type ev struct {
		dst   int
		start float64
	}
	per := make([][]ev, s.N)
	for _, e := range s.Events {
		if e.Src < 0 || e.Src >= s.N {
			return nil, fmt.Errorf("sim: event sender %d out of range", e.Src)
		}
		per[e.Src] = append(per[e.Src], ev{dst: e.Dst, start: e.Start})
	}
	p := &Plan{N: s.N, Sizes: sizes.Clone(), Order: make([][]int, s.N)}
	for i, evs := range per {
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].start != evs[b].start {
				return evs[a].start < evs[b].start
			}
			return evs[a].dst < evs[b].dst
		})
		for _, e := range evs {
			p.Order[i] = append(p.Order[i], e.dst)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// TotalExchange reports whether the plan sends exactly once from every
// processor to every other.
func (p *Plan) TotalExchange() bool {
	if p.Events() != p.N*(p.N-1) {
		return false
	}
	for i, dsts := range p.Order {
		if len(dsts) != p.N-1 {
			return false
		}
		_ = i
	}
	return true
}
