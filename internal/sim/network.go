// Package sim executes communication schedules on a simulated
// heterogeneous network. Where package timing evaluates a schedule's
// planned times analytically, sim plays a plan out event by event the
// way the paper's own software simulator does: senders work through
// their ordered destination lists, contending receives are arbitrated
// first-come-first-served (the control-message/acknowledgement
// protocol of Section 3.2), and transfer durations are drawn from a
// network whose bandwidth may drift while the exchange runs. The
// package also implements the Section 6.1 model enhancements
// (interleaved receives with context-switch overhead α, finite receive
// buffers) and the Section 6.3 checkpoint-based rescheduling.
package sim

import (
	"fmt"
	"sort"

	"hetsched/internal/netmodel"
)

// Network supplies transfer durations to the engine. Implementations
// may vary with simulation time; the engine samples conditions at the
// moment a transfer starts and holds them for its duration (a transfer
// straddling a change keeps its start-time conditions).
type Network interface {
	// N returns the number of processors.
	N() int
	// TransferTime returns the duration of moving size bytes from src
	// to dst if the transfer starts at time now.
	TransferTime(src, dst int, size int64, now float64) float64
}

// Static is a Network with time-invariant performance.
type Static struct {
	perf *netmodel.Perf
}

// NewStatic wraps a performance table as an unchanging network.
func NewStatic(perf *netmodel.Perf) *Static { return &Static{perf: perf.Clone()} }

// N implements Network.
func (s *Static) N() int { return s.perf.N() }

// TransferTime implements Network.
func (s *Static) TransferTime(src, dst int, size int64, _ float64) float64 {
	return s.perf.TransferTime(src, dst, size)
}

// Perf returns a copy of the underlying table.
func (s *Static) Perf() *netmodel.Perf { return s.perf.Clone() }

// Epoch is one segment of a piecewise-constant network: conditions
// Perf hold from Start until the next epoch begins.
type Epoch struct {
	Start float64
	Perf  *netmodel.Perf
}

// Piecewise is a Network whose performance changes at fixed times,
// modelling load shifts in a shared environment. Epochs must be
// sorted by start time, begin at or before 0, and share one size.
type Piecewise struct {
	epochs []Epoch
}

// NewPiecewise validates and wraps a sequence of epochs.
func NewPiecewise(epochs []Epoch) (*Piecewise, error) {
	if len(epochs) == 0 {
		return nil, fmt.Errorf("sim: piecewise network needs at least one epoch")
	}
	if epochs[0].Start > 0 {
		return nil, fmt.Errorf("sim: first epoch starts at %g, want ≤ 0", epochs[0].Start)
	}
	n := epochs[0].Perf.N()
	for i := 1; i < len(epochs); i++ {
		if epochs[i].Start < epochs[i-1].Start {
			return nil, fmt.Errorf("sim: epochs out of order at index %d", i)
		}
		if epochs[i].Perf.N() != n {
			return nil, fmt.Errorf("sim: epoch %d has %d processors, want %d", i, epochs[i].Perf.N(), n)
		}
	}
	cp := make([]Epoch, len(epochs))
	for i, e := range epochs {
		cp[i] = Epoch{Start: e.Start, Perf: e.Perf.Clone()}
	}
	return &Piecewise{epochs: cp}, nil
}

// N implements Network.
func (p *Piecewise) N() int { return p.epochs[0].Perf.N() }

// At returns a copy of the performance table in effect at time t —
// what a directory query at that moment would report.
func (p *Piecewise) At(t float64) *netmodel.Perf { return p.at(t).Clone() }

func (p *Piecewise) at(t float64) *netmodel.Perf {
	idx := sort.Search(len(p.epochs), func(i int) bool { return p.epochs[i].Start > t }) - 1
	if idx < 0 {
		idx = 0
	}
	return p.epochs[idx].Perf
}

// TransferTime implements Network.
func (p *Piecewise) TransferTime(src, dst int, size int64, now float64) float64 {
	return p.at(now).TransferTime(src, dst, size)
}
