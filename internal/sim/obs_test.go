package sim

import (
	"math/rand"
	"strings"
	"testing"

	"hetsched/internal/model"
	"hetsched/internal/netmodel"
	"hetsched/internal/obs"
	"hetsched/internal/sched"
)

// telemetryPlan builds a runnable plan for n processors.
func telemetryPlan(t *testing.T, n int) (*netmodel.Perf, *Plan) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	perf := netmodel.RandomPerf(rng, n, netmodel.GustoGuided())
	m, err := model.Build(perf, model.UniformSizes(n, 1<<18))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.NewOpenShop().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, model.UniformSizes(n, 1<<18))
	if err != nil {
		t.Fatal(err)
	}
	return perf, plan
}

// TestSetTelemetry checks the package-level hooks: counters track the
// result's own Checkpoints count, and checkpoint/replan instants land
// on the "control" track of the tracer in simulated time.
func TestSetTelemetry(t *testing.T) {
	perf, plan := telemetryPlan(t, 5)
	reg := obs.New()
	tr := obs.NewTracer(nil)
	SetTelemetry(reg, tr)
	defer SetTelemetry(nil, nil)

	net := NewStatic(perf)
	observe := func(float64) *netmodel.Perf { return perf }
	ck, err := RunCheckpointed(net, observe, plan, Halving{}, ReplanOpenShop)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Checkpoints == 0 {
		t.Fatal("halving policy took no checkpoints")
	}
	ckC := reg.Counter(obs.MetricSimCheckpoints, "").Value()
	rpC := reg.Counter(obs.MetricSimReplans, "").Value()
	if ckC != uint64(ck.Checkpoints) {
		t.Errorf("checkpoint counter = %d, result says %d", ckC, ck.Checkpoints)
	}
	if rpC != uint64(ck.Checkpoints) {
		t.Errorf("replan counter = %d, want %d (checkpointed mode always replans)", rpC, ck.Checkpoints)
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	trace := sb.String()
	for _, want := range []string{`"control"`, `"checkpoint"`, `"replan"`} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %s:\n%s", want, trace)
		}
	}
}

// TestReactiveTelemetry: with no fault times, checkpoints are counted
// but nothing is replanned.
func TestReactiveTelemetry(t *testing.T) {
	perf, plan := telemetryPlan(t, 5)
	reg := obs.New()
	SetTelemetry(reg, nil)
	defer SetTelemetry(nil, nil)

	net := NewStatic(perf)
	observe := func(float64) *netmodel.Perf { return perf }
	rr, err := RunReactive(net, observe, nil, plan, Halving{}, ReplanOpenShop)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Checkpoints == 0 {
		t.Fatal("halving policy took no checkpoints")
	}
	if got := reg.Counter(obs.MetricSimCheckpoints, "").Value(); got != uint64(rr.Checkpoints) {
		t.Errorf("checkpoint counter = %d, result says %d", got, rr.Checkpoints)
	}
	if got := reg.Counter(obs.MetricSimReplans, "").Value(); got != 0 {
		t.Errorf("replan counter = %d with no faults", got)
	}
}

// TestTelemetryDisabled: the default state must run clean (one pointer
// load per checkpoint, no recording anywhere).
func TestTelemetryDisabled(t *testing.T) {
	perf, plan := telemetryPlan(t, 4)
	SetTelemetry(nil, nil)
	net := NewStatic(perf)
	observe := func(float64) *netmodel.Perf { return perf }
	if _, err := RunCheckpointed(net, observe, plan, Halving{}, ReplanOpenShop); err != nil {
		t.Fatal(err)
	}
}
