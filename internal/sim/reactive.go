package sim

import (
	"fmt"
	"sort"

	"hetsched/internal/netmodel"
	"hetsched/internal/timing"
)

// Reactive execution: the robustness counterpart of checkpoint.go.
// Where RunCheckpointed replans at every checkpoint on the assumption
// that conditions drift continuously, RunReactive is built for the
// wide-area failure mode — a link degrades or fails at a discrete
// moment — and replans the undispatched tail only when a fault event
// has actually fired since the previous checkpoint. Unaffected runs
// pay only the (cheap) checkpoint bookkeeping, never the rescheduling.

// ReactiveResult reports an event-driven execution.
type ReactiveResult struct {
	Schedule    *timing.Schedule // all executed events with actual times
	Finish      float64
	Checkpoints int // phases executed (dispatch pauses)
	Replans     int // checkpoints at which a fault had fired and the tail was replanned
}

// RunReactive executes the plan in checkpointed phases set by the
// policy, replanning the tail with replan only when one of faultTimes
// (e.g. faults.Network.Times) falls inside the window since the last
// checkpoint; otherwise the remaining sends keep their order. Fault
// times at or before 0 are considered already reflected in the
// original plan. Processor availability carries across phases, so
// rescheduling inserts no barrier.
func RunReactive(net Network, observe func(t float64) *netmodel.Perf, faultTimes []float64, plan *Plan, policy CheckpointPolicy, replan Replanner) (*ReactiveResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if observe == nil {
		return nil, fmt.Errorf("sim: observe function is required")
	}
	times := append([]float64(nil), faultTimes...)
	sort.Float64s(times)
	next := 0
	for next < len(times) && times[next] <= 0 {
		next++
	}

	tel := simTel.Load()
	cur := plan.Clone()
	st := NewState(plan.N)
	out := &timing.Schedule{N: plan.N}
	res := &ReactiveResult{Schedule: out}
	for cur.Events() > 0 {
		budget := policy.NextBudget(cur.Events())
		if budget < 1 {
			budget = 1
		}
		phase, err := RunBudget(net, cur, st, budget)
		if err != nil {
			return nil, err
		}
		out.Events = append(out.Events, phase.Schedule.Events...)
		if phase.Finish > res.Finish {
			res.Finish = phase.Finish
		}
		st = phase.State
		if phase.Remaining == nil {
			break
		}
		if phase.Dispatched == 0 {
			return nil, fmt.Errorf("sim: reactive phase made no progress with %d events left", cur.Events())
		}
		res.Checkpoints++
		when := maxFloat(st.SendFree)
		tel.noteCheckpoint("reactive", when, phase.Remaining.Events())
		fired := false
		for next < len(times) && times[next] <= when {
			next++
			fired = true
		}
		if !fired {
			cur = phase.Remaining
			continue
		}
		// A fault fired mid-phase: query the directory for the degraded
		// conditions and reschedule the tail around them.
		cur, err = replan(observe(when), phase.Remaining, st.Clone(), when)
		if err != nil {
			return nil, err
		}
		if cur.Events() != phase.Remaining.Events() {
			return nil, fmt.Errorf("sim: replanner changed the event count from %d to %d",
				phase.Remaining.Events(), cur.Events())
		}
		tel.noteReplan("reactive", when, cur.Events())
		res.Replans++
	}
	return res, nil
}
