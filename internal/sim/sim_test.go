package sim

import (
	"math"
	"math/rand"
	"testing"

	"hetsched/internal/model"
	"hetsched/internal/netmodel"
	"hetsched/internal/sched"
	"hetsched/internal/timing"
	"hetsched/internal/workload"
)

// perfFromMatrix builds a pure-bandwidth performance table whose unit
// message transfer times equal the given durations, for hand-computed
// cases: latency 0, bandwidth 1/d bytes per second, size 1 byte.
func perfFromMatrix(d [][]float64) *netmodel.Perf {
	n := len(d)
	p := netmodel.NewPerf(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				p.Set(i, j, netmodel.PairPerf{Latency: 0, Bandwidth: 1e12})
				continue
			}
			p.Set(i, j, netmodel.PairPerf{Latency: 0, Bandwidth: 1 / d[i][j]})
		}
	}
	return p
}

func unitPlan(n int, order [][]int) *Plan {
	return &Plan{N: n, Order: order, Sizes: model.UniformSizes(n, 1)}
}

func TestPlanValidate(t *testing.T) {
	good := unitPlan(3, [][]int{{1, 2}, {0}, {}})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := []*Plan{
		unitPlan(3, [][]int{{1}, {0}}),                             // wrong list count
		unitPlan(3, [][]int{{3}, {}, {}}),                          // out of range
		unitPlan(3, [][]int{{0}, {}, {}}),                          // self send
		unitPlan(3, [][]int{{1, 1}, {}, {}}),                       // duplicate destination
		{N: 3, Order: [][]int{{}, {}, {}}},                         // missing sizes
		{N: 2, Order: [][]int{{1}, {0}}, Sizes: model.NewSizes(3)}, // size shape
	}
	for k, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid plan accepted", k)
		}
	}
}

func TestPlanEventsCloneTotalExchange(t *testing.T) {
	p := unitPlan(3, [][]int{{1, 2}, {0, 2}, {0, 1}})
	if p.Events() != 6 {
		t.Errorf("Events = %d", p.Events())
	}
	if !p.TotalExchange() {
		t.Error("full plan should be a total exchange")
	}
	c := p.Clone()
	c.Order[0][0] = 2
	c.Order[0][1] = 1
	if p.Order[0][0] != 1 {
		t.Error("Clone shares order storage")
	}
	partial := unitPlan(3, [][]int{{1}, {}, {}})
	if partial.TotalExchange() {
		t.Error("partial plan claimed total exchange")
	}
}

func TestPlanFromSchedule(t *testing.T) {
	s := &timing.Schedule{N: 3, Events: []timing.Event{
		{Src: 0, Dst: 2, Start: 5, Finish: 6},
		{Src: 0, Dst: 1, Start: 0, Finish: 1},
		{Src: 1, Dst: 0, Start: 0, Finish: 2},
	}}
	p, err := PlanFromSchedule(s, model.UniformSizes(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Order[0][0] != 1 || p.Order[0][1] != 2 {
		t.Errorf("sender 0 order = %v, want [1 2]", p.Order[0])
	}
	if len(p.Order[2]) != 0 {
		t.Error("sender 2 should have no sends")
	}
}

func TestPlanFromScheduleSizeMismatch(t *testing.T) {
	s := &timing.Schedule{N: 3}
	if _, err := PlanFromSchedule(s, model.UniformSizes(2, 1)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestStaticNetwork(t *testing.T) {
	perf := netmodel.Gusto()
	net := NewStatic(perf)
	if net.N() != 5 {
		t.Error("N wrong")
	}
	if got, want := net.TransferTime(0, 3, 1<<20, 123.0), perf.TransferTime(0, 3, 1<<20); got != want {
		t.Errorf("TransferTime = %g, want %g (time-invariant)", got, want)
	}
	// Perf returns a copy.
	net.Perf().Set(0, 3, netmodel.PairPerf{Latency: 1, Bandwidth: 1})
	if net.TransferTime(0, 3, 0, 0) != perf.TransferTime(0, 3, 0) {
		t.Error("Static leaked internal state")
	}
}

func TestPiecewiseNetwork(t *testing.T) {
	a := netmodel.Gusto()
	b := a.Scale(0.5) // half bandwidth after t=10
	pw, err := NewPiecewise([]Epoch{{Start: 0, Perf: a}, {Start: 10, Perf: b}})
	if err != nil {
		t.Fatal(err)
	}
	before := pw.TransferTime(0, 1, 1<<20, 9.999)
	after := pw.TransferTime(0, 1, 1<<20, 10)
	if after <= before {
		t.Errorf("bandwidth halving should slow transfers: before=%g after=%g", before, after)
	}
	if pw.TransferTime(0, 1, 1<<20, -5) != before {
		t.Error("times before the first epoch should use it")
	}
	// At returns a copy.
	pw.At(0).Set(0, 1, netmodel.PairPerf{Latency: 9, Bandwidth: 1})
	if pw.TransferTime(0, 1, 1<<20, 0) != before {
		t.Error("At leaked internal state")
	}
}

func TestPiecewiseValidation(t *testing.T) {
	a := netmodel.Gusto()
	if _, err := NewPiecewise(nil); err == nil {
		t.Error("empty epochs accepted")
	}
	if _, err := NewPiecewise([]Epoch{{Start: 5, Perf: a}}); err == nil {
		t.Error("late first epoch accepted")
	}
	if _, err := NewPiecewise([]Epoch{{Start: 0, Perf: a}, {Start: -1, Perf: a}}); err == nil {
		t.Error("out-of-order epochs accepted")
	}
	if _, err := NewPiecewise([]Epoch{{Start: 0, Perf: a}, {Start: 1, Perf: netmodel.NewPerf(3)}}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestRunSerializesContendingReceives(t *testing.T) {
	// Senders 0 and 1 both target 2 at t=0; durations 3 and 5. Sender 0
	// wins the tie, so events are [0,3) and [3,8).
	d := [][]float64{
		{0, 0, 3},
		{0, 0, 5},
		{0, 0, 0},
	}
	net := NewStatic(perfFromMatrix(d))
	plan := unitPlan(3, [][]int{{2}, {2}, {}})
	res, err := Run(net, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Events) != 2 {
		t.Fatalf("events = %d", len(res.Schedule.Events))
	}
	e0, e1 := res.Schedule.Events[0], res.Schedule.Events[1]
	if e0.Src != 0 || e0.Start != 0 || e0.Finish != 3 {
		t.Errorf("first event = %+v", e0)
	}
	if e1.Src != 1 || e1.Start != 3 || e1.Finish != 8 {
		t.Errorf("second event = %+v", e1)
	}
	if res.Finish != 8 {
		t.Errorf("finish = %g", res.Finish)
	}
	if res.Remaining != nil {
		t.Error("plan should be complete")
	}
}

func TestRunFIFOOrderByRequestTime(t *testing.T) {
	// Sender 1 frees at t=1 and requests receiver 3; sender 2 frees at
	// t=2 and requests 3 too. Receiver 3 is busy with sender 0 until
	// t=4. FIFO: sender 1 (earlier request) goes first.
	d := [][]float64{
		{0, 0, 0, 4},
		{0, 0, 1, 2}, // 1→2 takes 1s, then 1→3
		{0, 2, 0, 3}, // 2→1 takes 2s, then 2→3
		{0, 0, 0, 0},
	}
	net := NewStatic(perfFromMatrix(d))
	plan := unitPlan(4, [][]int{{3}, {2, 3}, {1, 3}, {}})
	res, err := Run(net, plan)
	if err != nil {
		t.Fatal(err)
	}
	var to3 []timing.Event
	for _, e := range res.Schedule.Events {
		if e.Dst == 3 {
			to3 = append(to3, e)
		}
	}
	if len(to3) != 3 {
		t.Fatalf("events to 3: %d", len(to3))
	}
	if to3[0].Src != 0 || to3[1].Src != 1 || to3[2].Src != 2 {
		t.Errorf("receive order at 3: %+v", to3)
	}
	if to3[1].Start != 4 || to3[2].Start != 6 {
		t.Errorf("grant times: %+v", to3)
	}
}

func TestRunMatchesModelOnStaticNetwork(t *testing.T) {
	// Executing an openshop plan on a static network must yield a valid
	// schedule whose durations match the model matrix and whose finish
	// is at least the lower bound.
	rng := rand.New(rand.NewSource(21))
	perf := netmodel.RandomPerf(rng, 10, netmodel.GustoGuided())
	sizes := model.UniformSizes(10, 1<<20)
	m, err := model.Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.NewOpenShop().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(NewStatic(perf), plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateTotalExchange(m); err != nil {
		t.Fatalf("executed schedule invalid: %v", err)
	}
	if res.Finish < m.LowerBound()-1e-9 {
		t.Errorf("finish %g below lower bound %g", res.Finish, m.LowerBound())
	}
	// Greedy FIFO replay of a good plan should stay in the same
	// ballpark as the planned completion.
	if res.Finish > 1.5*r.CompletionTime() {
		t.Errorf("execution %g strays far from plan %g", res.Finish, r.CompletionTime())
	}
}

func TestRunBudgetResume(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	perf := netmodel.RandomPerf(rng, 6, netmodel.GustoGuided())
	sizes := model.UniformSizes(6, 1<<18)
	m, err := model.Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.NewGreedy().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	net := NewStatic(perf)

	full, err := Run(net, plan)
	if err != nil {
		t.Fatal(err)
	}

	// Run in phases of 7 dispatches and splice the schedules together:
	// the result must exactly equal the single-shot run.
	var events []timing.Event
	st := NewState(6)
	cur := plan
	for {
		phase, err := RunBudget(net, cur, st, 7)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, phase.Schedule.Events...)
		st = phase.State
		if phase.Remaining == nil {
			break
		}
		if phase.Dispatched == 0 {
			t.Fatal("no progress")
		}
		cur = phase.Remaining
	}
	if len(events) != len(full.Schedule.Events) {
		t.Fatalf("phased run has %d events, full run %d", len(events), len(full.Schedule.Events))
	}
	key := func(e timing.Event) [2]int { return [2]int{e.Src, e.Dst} }
	fullBy := map[[2]int]timing.Event{}
	for _, e := range full.Schedule.Events {
		fullBy[key(e)] = e
	}
	for _, e := range events {
		f := fullBy[key(e)]
		if math.Abs(e.Start-f.Start) > 1e-9 || math.Abs(e.Finish-f.Finish) > 1e-9 {
			t.Fatalf("event %d→%d differs: phased [%g,%g) vs full [%g,%g)", e.Src, e.Dst, e.Start, e.Finish, f.Start, f.Finish)
		}
	}
}

func TestRunBudgetZero(t *testing.T) {
	net := NewStatic(netmodel.Gusto())
	plan := unitPlan(5, [][]int{{1}, {}, {}, {}, {}})
	res, err := RunBudget(net, plan, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != 0 || res.Remaining == nil || res.Remaining.Events() != 1 {
		t.Errorf("budget 0 should dispatch nothing: %+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	net := NewStatic(netmodel.Gusto())
	bad := unitPlan(5, [][]int{{0}, {}, {}, {}, {}})
	if _, err := Run(net, bad); err == nil {
		t.Error("invalid plan accepted")
	}
	small := unitPlan(3, [][]int{{1}, {}, {}})
	if _, err := Run(net, small); err == nil {
		t.Error("size mismatch accepted")
	}
	good := unitPlan(5, [][]int{{1}, {}, {}, {}, {}})
	if _, err := RunBudget(net, good, &State{SendFree: make([]float64, 2), RecvFree: make([]float64, 2)}, -1); err == nil {
		t.Error("bad state shape accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	perf := netmodel.RandomPerf(rng, 8, netmodel.GustoGuided())
	sizes := workload.Sizes(rng, workload.DefaultSpec(workload.Mixed, 8))
	m, err := model.Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.MaxMatching{}.Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(NewStatic(perf), plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(NewStatic(perf), plan)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Schedule.Events {
		if a.Schedule.Events[k] != b.Schedule.Events[k] {
			t.Fatal("nondeterministic execution")
		}
	}
}

func TestRunOnPiecewiseUsesStartConditions(t *testing.T) {
	// One sender, two sequential messages of duration 10 under epoch 1;
	// bandwidth halves at t=5. The first transfer starts at 0 and keeps
	// its 10s duration; the second starts at 10 under the slow epoch and
	// takes 20s.
	fast := perfFromMatrix([][]float64{{0, 10, 10}, {0, 0, 0}, {0, 0, 0}})
	slow := fast.Scale(0.5)
	pw, err := NewPiecewise([]Epoch{{Start: 0, Perf: fast}, {Start: 5, Perf: slow}})
	if err != nil {
		t.Fatal(err)
	}
	plan := unitPlan(3, [][]int{{1, 2}, {}, {}})
	res, err := Run(pw, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Events[0].Finish != 10 {
		t.Errorf("first transfer finish = %g, want 10", res.Schedule.Events[0].Finish)
	}
	if res.Schedule.Events[1].Finish != 30 {
		t.Errorf("second transfer finish = %g, want 30", res.Schedule.Events[1].Finish)
	}
}

func TestInterleavedMatchesPaperFormula(t *testing.T) {
	// Two equal simultaneous receives of duration d with overhead α
	// both finish at (1+α)·2d, the paper's calibration point.
	const d, alpha = 4.0, 0.25
	m := [][]float64{
		{0, 0, d},
		{0, 0, d},
		{0, 0, 0},
	}
	net := NewStatic(perfFromMatrix(m))
	plan := unitPlan(3, [][]int{{2}, {2}, {}})
	res, err := RunInterleaved(net, plan, alpha)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + alpha) * 2 * d
	if math.Abs(res.Finish-want) > 1e-9 {
		t.Errorf("finish = %g, want %g", res.Finish, want)
	}
	for _, e := range res.Schedule.Events {
		if math.Abs(e.Finish-want) > 1e-9 {
			t.Errorf("event %+v should finish at %g", e, want)
		}
	}
}

func TestInterleavedLoneReceiveFullRate(t *testing.T) {
	m := [][]float64{{0, 7}, {0, 0}}
	net := NewStatic(perfFromMatrix(m))
	plan := unitPlan(2, [][]int{{1}, {}})
	res, err := RunInterleaved(net, plan, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Finish-7) > 1e-9 {
		t.Errorf("lone receive finish = %g, want 7 (no overhead)", res.Finish)
	}
}

func TestInterleavedRespectsLowerBound(t *testing.T) {
	// Each sender still serializes its sends at full duration, and each
	// receiver's aggregate service rate never exceeds 1, so the model's
	// lower bound survives interleaving for every α ≥ 0.
	rng := rand.New(rand.NewSource(24))
	perf := netmodel.RandomPerf(rng, 8, netmodel.GustoGuided())
	sizes := model.UniformSizes(8, 1<<20)
	m, err := model.Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Baseline{}.Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	net := NewStatic(perf)
	for _, alpha := range []float64{0, 0.3, 1.0} {
		inter, err := RunInterleaved(net, plan, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if inter.Finish < m.LowerBound()-1e-9 {
			t.Errorf("α=%g: finish %g below lower bound %g", alpha, inter.Finish, m.LowerBound())
		}
		if len(inter.Schedule.Events) != plan.Events() {
			t.Errorf("α=%g: executed %d events, want %d", alpha, len(inter.Schedule.Events), plan.Events())
		}
	}
}

func TestInterleavedMonotoneInAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	perf := netmodel.RandomPerf(rng, 6, netmodel.GustoGuided())
	sizes := model.UniformSizes(6, 1<<20)
	m, err := model.Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.Baseline{}.Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	net := NewStatic(perf)
	prev := -1.0
	for _, alpha := range []float64{0, 0.2, 0.5, 1.0} {
		res, err := RunInterleaved(net, plan, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if res.Finish < prev-1e-9 {
			t.Errorf("completion decreased as α grew: %g after %g", res.Finish, prev)
		}
		prev = res.Finish
	}
}

func TestInterleavedRejectsBadAlpha(t *testing.T) {
	net := NewStatic(netmodel.Gusto())
	plan := unitPlan(5, [][]int{{1}, {}, {}, {}, {}})
	for _, alpha := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		if _, err := RunInterleaved(net, plan, alpha); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
}

func TestBufferedDecouplesSender(t *testing.T) {
	// Receiver 2 busy with a 10s direct receive from 0. Sender 1 wires
	// its 4s message into the buffer and is free at t=4 to serve its
	// next destination, while under the exclusive model it would block
	// until t=10 and finish its second send later.
	d := [][]float64{
		{0, 0, 10},
		{0, 0, 4},
		{0, 3, 0},
	}
	net := NewStatic(perfFromMatrix(d))
	// Sender 1: first to 2 (buffered), then... sender 1's second send
	// goes to 0 — give it one: d[1][0] = 6.
	d2 := [][]float64{
		{0, 0, 10},
		{6, 0, 4},
		{0, 3, 0},
	}
	net = NewStatic(perfFromMatrix(d2))
	plan := unitPlan(3, [][]int{{2}, {2, 0}, {}})

	excl, err := Run(net, plan)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := RunBuffered(net, plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Exclusive: 1→2 waits until 10, ends 14; then 1→0 ends 20.
	if excl.Finish != 20 {
		t.Errorf("exclusive finish = %g, want 20", excl.Finish)
	}
	// Buffered: 1→2 wire [0,4), 1→0 [4,10); app receive of 1→2 runs
	// [10,14). Finish 14.
	if buf.Finish != 14 {
		t.Errorf("buffered finish = %g, want 14", buf.Finish)
	}
}

func TestBufferedFullBufferBlocks(t *testing.T) {
	// Capacity 1: receiver 2 takes a 10s direct receive from 0; sender 1
	// fills the one buffer slot with a 2s wire; sender 3's request at
	// t=0 must wait until the buffered message starts draining at t=10.
	d := [][]float64{
		{0, 0, 10, 0},
		{0, 0, 2, 0},
		{0, 0, 0, 0},
		{0, 0, 5, 0},
	}
	net := NewStatic(perfFromMatrix(d))
	plan := unitPlan(4, [][]int{{2}, {2}, {}, {2}})
	res, err := RunBuffered(net, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wire3 timing.Event
	for _, e := range res.Schedule.Events {
		if e.Src == 3 {
			wire3 = e
		}
	}
	if wire3.Start != 10 {
		t.Errorf("blocked sender started at %g, want 10 (buffer drain)", wire3.Start)
	}
	// App receives: direct [0,10), buffered 1→2 [10,12), 3→2 [15,20).
	if math.Abs(res.Finish-20) > 1e-9 {
		t.Errorf("finish = %g, want 20", res.Finish)
	}
}

func TestBufferedCapacityValidation(t *testing.T) {
	net := NewStatic(netmodel.Gusto())
	plan := unitPlan(5, [][]int{{1}, {}, {}, {}, {}})
	if _, err := RunBuffered(net, plan, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestBufferedRespectsLowerBound(t *testing.T) {
	// Buffering decouples sender and receiver but each message still
	// occupies the sender's port and the receiver's application for its
	// full duration, so the model's lower bound survives. (Completion
	// relative to the exclusive engine can go either way: the sender
	// frees early, but store-and-forward doubles per-message pipeline
	// latency.)
	for seed := int64(30); seed < 36; seed++ {
		rng := rand.New(rand.NewSource(seed))
		perf := netmodel.RandomPerf(rng, 7, netmodel.GustoGuided())
		sizes := workload.Sizes(rng, workload.DefaultSpec(workload.Mixed, 7))
		m, err := model.Build(perf, sizes)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sched.NewOpenShop().Schedule(m)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := PlanFromSchedule(r.Schedule, sizes)
		if err != nil {
			t.Fatal(err)
		}
		net := NewStatic(perf)
		buf, err := RunBuffered(net, plan, 8)
		if err != nil {
			t.Fatal(err)
		}
		if buf.Finish < m.LowerBound()-1e-9 {
			t.Errorf("seed %d: buffered finish %g below lower bound %g", seed, buf.Finish, m.LowerBound())
		}
		if len(buf.Schedule.Events) != plan.Events() {
			t.Errorf("seed %d: executed %d wire events, want %d", seed, len(buf.Schedule.Events), plan.Events())
		}
	}
}

func TestCheckpointNoCheckpointsEqualsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	perf := netmodel.RandomPerf(rng, 6, netmodel.GustoGuided())
	sizes := model.UniformSizes(6, 1<<19)
	m, err := model.Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.NewOpenShop().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	net := NewStatic(perf)
	observe := func(float64) *netmodel.Perf { return net.Perf() }

	plain, err := Run(net, plan)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := RunCheckpointed(net, observe, plan, NoCheckpoints{}, KeepOrder)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Checkpoints != 0 {
		t.Errorf("NoCheckpoints replanned %d times", ck.Checkpoints)
	}
	if math.Abs(ck.Finish-plain.Finish) > 1e-9 {
		t.Errorf("checkpointed finish %g != plain %g", ck.Finish, plain.Finish)
	}
}

func TestCheckpointKeepOrderInvariantOnStaticNetwork(t *testing.T) {
	// With a static network and the identity replanner, checkpoints must
	// not change the outcome: state carry-over means no barrier.
	rng := rand.New(rand.NewSource(41))
	perf := netmodel.RandomPerf(rng, 7, netmodel.GustoGuided())
	sizes := model.UniformSizes(7, 1<<19)
	m, err := model.Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sched.NewGreedy().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	net := NewStatic(perf)
	observe := func(float64) *netmodel.Perf { return net.Perf() }
	plain, err := Run(net, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []CheckpointPolicy{Halving{}, EveryEvents{K: 5}} {
		ck, err := RunCheckpointed(net, observe, plan, pol, KeepOrder)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ck.Finish-plain.Finish) > 1e-9 {
			t.Errorf("%s: finish %g != plain %g", pol.Name(), ck.Finish, plain.Finish)
		}
		if ck.Checkpoints == 0 {
			t.Errorf("%s: expected checkpoints", pol.Name())
		}
		if len(ck.Schedule.Events) != len(plain.Schedule.Events) {
			t.Errorf("%s: lost events", pol.Name())
		}
	}
}

func TestCheckpointAdaptationHelpsUnderDrift(t *testing.T) {
	// Bandwidths shift dramatically mid-exchange. Rescheduling the tail
	// with fresh estimates should on average beat keeping the stale
	// order. Compare mean completion over several seeds.
	var keepSum, adaptSum float64
	const trials = 10
	for seed := int64(50); seed < 50+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12
		before := netmodel.RandomPerf(rng, n, netmodel.GustoGuided())
		// A fifth of the links lose 10× bandwidth mid-exchange.
		after := before.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.2 {
					pp := after.At(i, j)
					pp.Bandwidth /= 10
					after.Set(i, j, pp)
				}
			}
		}
		sizes := model.UniformSizes(n, 1<<20)
		m, err := model.Build(before, sizes)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sched.NewOpenShop().Schedule(m)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := PlanFromSchedule(r.Schedule, sizes)
		if err != nil {
			t.Fatal(err)
		}
		// Shift at a quarter of the planned completion.
		shift := r.CompletionTime() / 4
		pw, err := NewPiecewise([]Epoch{{Start: 0, Perf: before}, {Start: shift, Perf: after}})
		if err != nil {
			t.Fatal(err)
		}
		keep, err := RunCheckpointed(pw, pw.At, plan, EveryEvents{K: n}, KeepOrder)
		if err != nil {
			t.Fatal(err)
		}
		adapt, err := RunCheckpointed(pw, pw.At, plan, EveryEvents{K: n}, ReplanOpenShop)
		if err != nil {
			t.Fatal(err)
		}
		keepSum += keep.Finish
		adaptSum += adapt.Finish
	}
	if adaptSum > keepSum*1.01 {
		t.Errorf("adaptive rescheduling (%g) did not beat stale order (%g)", adaptSum/trials, keepSum/trials)
	}
}

func TestCheckpointAdaptationNeutralOnStaticNetwork(t *testing.T) {
	// With no drift, state-aware rescheduling must be roughly free:
	// replanning with the same information should not derail execution.
	var keepSum, adaptSum float64
	const trials = 6
	for seed := int64(70); seed < 70+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10
		perf := netmodel.RandomPerf(rng, n, netmodel.GustoGuided())
		sizes := model.UniformSizes(n, 1<<20)
		m, err := model.Build(perf, sizes)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sched.NewOpenShop().Schedule(m)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := PlanFromSchedule(r.Schedule, sizes)
		if err != nil {
			t.Fatal(err)
		}
		net := NewStatic(perf)
		observe := func(float64) *netmodel.Perf { return net.Perf() }
		keep, err := RunCheckpointed(net, observe, plan, EveryEvents{K: n}, KeepOrder)
		if err != nil {
			t.Fatal(err)
		}
		adapt, err := RunCheckpointed(net, observe, plan, EveryEvents{K: n}, ReplanOpenShop)
		if err != nil {
			t.Fatal(err)
		}
		keepSum += keep.Finish
		adaptSum += adapt.Finish
	}
	if adaptSum > keepSum*1.05 {
		t.Errorf("static-network rescheduling cost too much: adapt %g vs keep %g", adaptSum/trials, keepSum/trials)
	}
}

func TestReplanOpenShopPreservesPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	perf := netmodel.RandomPerf(rng, 6, netmodel.GustoGuided())
	rem := unitPlan(6, [][]int{{3, 1}, {2}, {}, {0, 4, 5}, {}, {1}})
	out, err := ReplanOpenShop(perf, rem, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rem.SortedPairs(), out.SortedPairs()
	if len(a) != len(b) {
		t.Fatalf("pair count changed: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("pair set changed at %d: %v vs %v", k, a[k], b[k])
		}
	}
}

func TestReplanOpenShopShapeMismatch(t *testing.T) {
	rem := unitPlan(3, [][]int{{1}, {}, {}})
	if _, err := ReplanOpenShop(netmodel.Gusto(), rem, nil, 0); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestCheckpointPolicyNames(t *testing.T) {
	if NoCheckpoints.Name(NoCheckpoints{}) != "none" {
		t.Error("NoCheckpoints name")
	}
	if (EveryEvents{K: 3}).Name() != "every-3" {
		t.Error("EveryEvents name")
	}
	if (Halving{}).Name() != "halving" {
		t.Error("Halving name")
	}
	if (Halving{}).NextBudget(5) != 3 {
		t.Error("Halving budget")
	}
}

func TestRunCheckpointedRequiresObserve(t *testing.T) {
	net := NewStatic(netmodel.Gusto())
	plan := unitPlan(5, [][]int{{1}, {}, {}, {}, {}})
	if _, err := RunCheckpointed(net, nil, plan, Halving{}, KeepOrder); err == nil {
		t.Error("nil observe accepted")
	}
}

func TestRunCheckpointedRejectsBadReplanner(t *testing.T) {
	net := NewStatic(netmodel.Gusto())
	plan := unitPlan(5, [][]int{{1, 2}, {0}, {}, {}, {}})
	evil := func(_ *netmodel.Perf, rem *Plan, _ *State, _ float64) (*Plan, error) {
		c := rem.Clone()
		for i := range c.Order {
			c.Order[i] = nil // drop everything
		}
		return c, nil
	}
	if _, err := RunCheckpointed(net, func(float64) *netmodel.Perf { return netmodel.Gusto() }, plan, EveryEvents{K: 1}, evil); err == nil {
		t.Error("replanner that drops events accepted")
	}
}

func TestStateClone(t *testing.T) {
	st := NewState(3)
	st.SendFree[1] = 5
	c := st.Clone()
	c.SendFree[1] = 9
	if st.SendFree[1] != 5 {
		t.Error("State.Clone shares storage")
	}
}

func TestTopologyNetworkSharing(t *testing.T) {
	topo := netmodel.ExampleTopology(2)
	tn, err := NewTopologyNetwork(topo)
	if err != nil {
		t.Fatal(err)
	}
	// The engine's contract: BeginFlow precedes the duration query, so
	// the flow counts toward its own share. Alone, host 0 (Site1) to
	// host 2 (Site2) sees the unshared bottleneck.
	tn.BeginFlow(0, 2, 0)
	alone := tn.TransferTime(0, 2, 1<<20, 0)
	tn.EndFlow(0, 2, 0)
	// A concurrent flow over the same route halves the share.
	tn.BeginFlow(1, 3, 0)
	tn.BeginFlow(0, 2, 0)
	shared := tn.TransferTime(0, 2, 1<<20, 0)
	tn.EndFlow(0, 2, 0)
	if shared <= alone {
		t.Errorf("sharing should slow the transfer: alone=%g shared=%g", alone, shared)
	}
	tn.EndFlow(1, 3, 0)
	tn.BeginFlow(0, 2, 0)
	if got := tn.TransferTime(0, 2, 1<<20, 0); got != alone {
		t.Errorf("after EndFlow the share should be restored: %g vs %g", got, alone)
	}
	tn.EndFlow(0, 2, 0)
	// Disjoint flows (inside Site3) do not affect the Site1-Site2 route.
	tn.BeginFlow(4, 5, 0)
	tn.BeginFlow(0, 2, 0)
	if got := tn.TransferTime(0, 2, 1<<20, 0); got != alone {
		t.Errorf("disjoint flow changed the duration: %g vs %g", got, alone)
	}
	tn.EndFlow(0, 2, 0)
	tn.EndFlow(4, 5, 0)
}

func TestTopologyNetworkSelfAndCounts(t *testing.T) {
	topo := netmodel.ExampleTopology(1)
	tn, err := NewTopologyNetwork(topo)
	if err != nil {
		t.Fatal(err)
	}
	if tn.TransferTime(1, 1, 1<<20, 0) != 0 {
		t.Error("self transfer should be free")
	}
	tn.BeginFlow(0, 1, 0)
	if tn.ActiveFlows("t3-1-2") != 1 {
		t.Error("flow not counted on the backbone")
	}
	tn.EndFlow(0, 1, 0)
	tn.EndFlow(0, 1, 0) // extra end must not go negative
	if tn.ActiveFlows("t3-1-2") != 0 {
		t.Error("flow count corrupted")
	}
	if tn.N() != 3 {
		t.Error("N wrong")
	}
}

func TestTopologyNetworkUnroutable(t *testing.T) {
	topo := netmodel.NewTopology([]netmodel.Site{
		{Name: "A", Hosts: 1, LAN: netmodel.Link{Name: "lanA", Latency: 0.001, Bandwidth: 1e6}},
		{Name: "B", Hosts: 1, LAN: netmodel.Link{Name: "lanB", Latency: 0.001, Bandwidth: 1e6}},
	})
	if _, err := NewTopologyNetwork(topo); err == nil {
		t.Error("unroutable topology accepted")
	}
}

func TestEngineAppliesLinkSharing(t *testing.T) {
	// Two same-site senders each transfer to the other site over the
	// shared backbone simultaneously; with sharing each goes at half
	// rate, so the engine's completion must exceed the unshared
	// prediction.
	topo := netmodel.ExampleTopology(2)
	tn, err := NewTopologyNetwork(topo)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{
		N:     6,
		Order: [][]int{{2}, {3}, {}, {}, {}, {}},
		Sizes: model.UniformSizes(6, 1<<22),
	}
	sharedRes, err := Run(tn, plan)
	if err != nil {
		t.Fatal(err)
	}
	perf, err := topo.Perf()
	if err != nil {
		t.Fatal(err)
	}
	unsharedRes, err := Run(NewStatic(perf), plan)
	if err != nil {
		t.Fatal(err)
	}
	if sharedRes.Finish <= unsharedRes.Finish {
		t.Errorf("link sharing should slow concurrent transfers: shared=%g unshared=%g",
			sharedRes.Finish, unsharedRes.Finish)
	}
	// All flows released at the end.
	if tn.ActiveFlows("t3-1-2") != 0 || tn.ActiveFlows("lan1") != 0 {
		t.Error("engine leaked active flows")
	}
	// A serialized plan (single sender) should see no sharing penalty.
	serial := &Plan{
		N:     6,
		Order: [][]int{{2, 3}, {}, {}, {}, {}, {}},
		Sizes: model.UniformSizes(6, 1<<22),
	}
	sh, err := Run(tn, serial)
	if err != nil {
		t.Fatal(err)
	}
	un, err := Run(NewStatic(perf), serial)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sh.Finish-un.Finish) > 1e-9 {
		t.Errorf("serialized transfers should be unaffected by sharing: %g vs %g", sh.Finish, un.Finish)
	}
}
