package sim

import (
	"fmt"
	"math"
	"sort"

	"hetsched/internal/model"
	"hetsched/internal/netmodel"
	"hetsched/internal/timing"
)

// Section 6.3: enhancing the adaptivity of schedules. When network
// performance drifts faster than a whole exchange completes, an
// initial schedule computed from estimates is refined at intermediate
// checkpoints: execution pauses dispatching, the directory is queried
// for fresh conditions, and the remaining events are rescheduled. The
// paper proposes checkpoints after every k events (O(P) checkpoints)
// or after half of the remaining events (O(log P) checkpoints); both
// policies are implemented here. Processor availability carries across
// checkpoints, so rescheduling inserts no barrier.

// CheckpointPolicy decides how many transfers to dispatch before the
// next checkpoint.
type CheckpointPolicy interface {
	// NextBudget returns how many transfers to dispatch in the coming
	// phase given how many remain. Results < 1 are treated as 1.
	NextBudget(remaining int) int
	// Name identifies the policy in reports.
	Name() string
}

// NoCheckpoints runs the whole plan in one phase.
type NoCheckpoints struct{}

// NextBudget implements CheckpointPolicy.
func (NoCheckpoints) NextBudget(remaining int) int { return remaining }

// Name implements CheckpointPolicy.
func (NoCheckpoints) Name() string { return "none" }

// EveryEvents checkpoints after each batch of K dispatched transfers —
// the paper's O(P) checkpoint flavour when K is O(P).
type EveryEvents struct{ K int }

// NextBudget implements CheckpointPolicy.
func (e EveryEvents) NextBudget(remaining int) int { return e.K }

// Name implements CheckpointPolicy.
func (e EveryEvents) Name() string { return fmt.Sprintf("every-%d", e.K) }

// Halving checkpoints after half of the remaining events complete —
// the paper's O(log P) checkpoint flavour.
type Halving struct{}

// NextBudget implements CheckpointPolicy.
func (Halving) NextBudget(remaining int) int { return (remaining + 1) / 2 }

// Name implements CheckpointPolicy.
func (Halving) Name() string { return "halving" }

// Replanner reorders the remaining sends given a fresh performance
// estimate from the directory, the processor availability carried over
// from the executed prefix, and the checkpoint time. It must return a
// plan over exactly the same (sender, destination) multiset it was
// given.
type Replanner func(perf *netmodel.Perf, remaining *Plan, st *State, now float64) (*Plan, error)

// KeepOrder is the identity replanner: the control arm that pays for
// checkpoints but never adapts.
func KeepOrder(_ *netmodel.Perf, remaining *Plan, _ *State, _ float64) (*Plan, error) {
	return remaining.Clone(), nil
}

// ReplanOpenShop reschedules the remaining sends with the open shop
// heuristic generalized to partial communication patterns: senders are
// repeatedly given their earliest-available remaining receiver, using
// communication times computed from the fresh performance estimate and
// starting from the actual mid-flight availability of every processor.
// (The paper's open shop scheduler is the best performer on full total
// exchange; the generalization to arbitrary remaining sets is direct —
// each sender's receiver set simply starts smaller and its clock does
// not start at zero.)
func ReplanOpenShop(perf *netmodel.Perf, remaining *Plan, st *State, _ float64) (*Plan, error) {
	if perf.N() != remaining.N {
		return nil, fmt.Errorf("sim: estimate covers %d processors, plan %d", perf.N(), remaining.N)
	}
	n := remaining.N
	cost := model.NewMatrix(n)
	pend := make([][]bool, n)
	counts := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		pend[i] = make([]bool, n)
		for _, j := range remaining.Order[i] {
			pend[i][j] = true
			counts[i]++
			total++
			cost.Set(i, j, perf.TransferTime(i, j, remaining.Sizes.At(i, j)))
		}
	}
	sendAvail := make([]float64, n)
	recvAvail := make([]float64, n)
	if st != nil {
		copy(sendAvail, st.SendFree)
		copy(recvAvail, st.RecvFree)
	}
	order := make([][]int, n)
	for total > 0 {
		i := -1
		for s := 0; s < n; s++ {
			if counts[s] == 0 {
				continue
			}
			if i < 0 || sendAvail[s] < sendAvail[i] {
				i = s
			}
		}
		j := -1
		for r := 0; r < n; r++ {
			if pend[i][r] && (j < 0 || recvAvail[r] < recvAvail[j]) {
				j = r
			}
		}
		start := math.Max(sendAvail[i], recvAvail[j])
		fin := start + cost.At(i, j)
		sendAvail[i], recvAvail[j] = fin, fin
		pend[i][j] = false
		counts[i]--
		total--
		order[i] = append(order[i], j)
	}
	out := &Plan{N: n, Sizes: remaining.Sizes.Clone(), Order: order}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckpointResult reports a checkpointed execution.
type CheckpointResult struct {
	Schedule    *timing.Schedule // all executed events with actual times
	Finish      float64
	Checkpoints int // how many times the directory was queried and the tail replanned
}

// RunCheckpointed executes the plan on net, dispatching in phases set
// by the policy and replanning the undispatched tail at each
// checkpoint using the observe function (a directory query: it returns
// the performance estimate visible at the given time). Passing
// NoCheckpoints with any replanner is equivalent to Run.
func RunCheckpointed(net Network, observe func(t float64) *netmodel.Perf, plan *Plan, policy CheckpointPolicy, replan Replanner) (*CheckpointResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if observe == nil {
		return nil, fmt.Errorf("sim: observe function is required")
	}
	tel := simTel.Load()
	cur := plan.Clone()
	st := NewState(plan.N)
	out := &timing.Schedule{N: plan.N}
	res := &CheckpointResult{Schedule: out}
	for cur.Events() > 0 {
		budget := policy.NextBudget(cur.Events())
		if budget < 1 {
			budget = 1
		}
		phase, err := RunBudget(net, cur, st, budget)
		if err != nil {
			return nil, err
		}
		out.Events = append(out.Events, phase.Schedule.Events...)
		if phase.Finish > res.Finish {
			res.Finish = phase.Finish
		}
		st = phase.State
		if phase.Remaining == nil {
			break
		}
		if phase.Dispatched == 0 {
			return nil, fmt.Errorf("sim: checkpoint phase made no progress with %d events left", cur.Events())
		}
		// Checkpoint: query the directory at the moment the last
		// dispatched transfer completed and reschedule the tail.
		when := maxFloat(st.SendFree)
		tel.noteCheckpoint("checkpointed", when, phase.Remaining.Events())
		cur, err = replan(observe(when), phase.Remaining, st.Clone(), when)
		if err != nil {
			return nil, err
		}
		if cur.Events() != phase.Remaining.Events() {
			return nil, fmt.Errorf("sim: replanner changed the event count from %d to %d",
				phase.Remaining.Events(), cur.Events())
		}
		tel.noteReplan("checkpointed", when, cur.Events())
		res.Checkpoints++
	}
	return res, nil
}

func maxFloat(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// SortedPairs returns the plan's sends as deterministic (src, dst)
// pairs, useful for comparing replanner outputs in tests.
func (p *Plan) SortedPairs() []timing.Pair {
	var out []timing.Pair
	for i, dsts := range p.Order {
		for _, j := range dsts {
			out = append(out, timing.Pair{Src: i, Dst: j})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Src != out[b].Src {
			return out[a].Src < out[b].Src
		}
		return out[a].Dst < out[b].Dst
	})
	return out
}
