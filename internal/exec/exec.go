// Package exec is the data-plane exchange executor: it takes the
// timing diagram a scheduler produced (sched.Result) and performs the
// real byte transfers it describes over a pluggable Transport,
// honoring the paper's port model — at most one active send and one
// active receive per node, enforced with per-node semaphores.
//
// Each transfer runs under a deadline derived from its modeled time
// (Slack × the event's duration, floored at MinDeadline), with bounded
// retries and seeded-jitter backoff. Failures are classified: a
// *PeerDeadError from the transport — or retry exhaustion — declares
// the peer dead, at which point the executor computes the residual
// communication pattern (undelivered survivor-to-survivor entries
// only), re-plans it through sched.ReplanResidual (or an injected
// ReplanFunc routing through the communicator's scheduler ladder), and
// resumes. Run returns a DeliveryReport accounting for every byte of
// the exchange: delivered under the original plan, rerouted under a
// replan, or abandoned with a reason, plus measured wall clock against
// the plan's modeled t_max.
//
// Delivery is exactly-once to the Deliver sink: the sender side is
// at-least-once (retries may duplicate an attempt whose ack was lost),
// and the receiver side deduplicates through a per-exchange ledger,
// acking duplicates without re-applying them. DESIGN.md §10 gives the
// full state machine.
package exec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetsched/internal/calib"
	"hetsched/internal/model"
	"hetsched/internal/obs"
	"hetsched/internal/sched"
	"hetsched/internal/timing"
)

//hetvet:ignore determinism the package's one wall-clock default; every other site injects Clock
var wallClock = time.Now

// ReplanFunc plans the residual pattern among survivors after a node
// death. It receives the original communication matrix, the pattern of
// undelivered survivor-to-survivor pairs, and the liveness predicate;
// it must return a schedule containing exactly those pairs.
type ReplanFunc func(m *model.Matrix, residual sched.Pattern, alive func(int) bool) (*sched.Result, error)

// PayloadFunc produces the bytes node src owes node dst. It must be
// deterministic in its arguments: the receiver regenerates the payload
// to verify what arrived.
type PayloadFunc func(src, dst int, size int64) []byte

// DeliverFunc is the application sink. The executor calls it exactly
// once per delivered (src, dst) pair, outside all executor locks.
type DeliverFunc func(src, dst int, payload []byte)

// Config tunes an Executor. The zero value selects working defaults
// for every field.
type Config struct {
	// Slack scales a transfer's modeled duration into its attempt
	// deadline. 0 selects 4.
	Slack float64
	// MinDeadline floors the attempt deadline, so near-zero modeled
	// times still leave room for real I/O. 0 selects 50ms.
	MinDeadline time.Duration
	// MaxRetries bounds extra attempts per transfer per round before
	// the destination is declared dead. 0 selects 3; negative is an
	// error.
	MaxRetries int
	// Backoff is the base retry backoff, doubled per attempt with
	// seeded jitter in [0, Backoff). 0 selects 2ms.
	Backoff time.Duration
	// Seed drives the backoff jitter. 0 selects 1.
	Seed int64
	// MaxRounds bounds plan rounds (the original plan plus residual
	// replans). 0 selects the node count.
	MaxRounds int
	// Replan plans the residual after a death. Nil selects
	// sched.ReplanResidual (open shop on the survivor-restricted
	// matrix).
	Replan ReplanFunc
	// Payload generates transfer bytes. Nil selects a deterministic
	// generator keyed on (src, dst, offset).
	Payload PayloadFunc
	// Deliver receives each delivered payload exactly once. Nil
	// discards payloads after verification.
	Deliver DeliverFunc
	// Clock supplies deadlines and wall-clock measurement; nil selects
	// the wall clock.
	Clock func() time.Time
	// Sleep implements retry backoff; nil selects time.Sleep.
	Sleep func(time.Duration)
	// Metrics receives exec counters and histograms; nil disables.
	Metrics *obs.Registry
	// Tracer receives exchange/round spans and death/replan instants;
	// nil disables.
	Tracer *obs.Tracer
	// Flight, when set, receives flight-recorder events for peer
	// deaths, residual replans, and exchange completion. Nil disables.
	Flight *obs.FlightRecorder
	// Samples, when set, receives the exchange's per-transfer
	// measurements after the report is assembled — the feed the
	// closed-loop calibrator (internal/calib) consumes. The callback
	// runs once per Run, outside all executor locks, before Run
	// returns. Nil (the default) disables measurement entirely: the
	// send path takes no extra clock reads and allocates nothing.
	Samples func([]calib.Sample)
}

// Executor runs exchanges over one transport. Create with New; one
// exchange at a time per transport (Run owns the accept streams).
type Executor struct {
	tr  Transport
	cfg Config
	xid atomic.Uint64
}

// New validates the configuration, fills defaults, and returns an
// executor bound to the transport.
func New(tr Transport, cfg Config) (*Executor, error) {
	if tr == nil {
		return nil, errors.New("exec: nil transport")
	}
	if cfg.Slack < 0 {
		return nil, fmt.Errorf("exec: negative slack %g", cfg.Slack)
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("exec: negative retry bound %d", cfg.MaxRetries)
	}
	if cfg.MinDeadline < 0 || cfg.Backoff < 0 || cfg.MaxRounds < 0 {
		return nil, errors.New("exec: negative durations or round bound")
	}
	if cfg.Slack == 0 {
		cfg.Slack = 4
	}
	if cfg.MinDeadline == 0 {
		cfg.MinDeadline = 50 * time.Millisecond
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 2 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Replan == nil {
		cfg.Replan = func(m *model.Matrix, residual sched.Pattern, alive func(int) bool) (*sched.Result, error) {
			return sched.ReplanResidual(m, residual, alive)
		}
	}
	if cfg.Payload == nil {
		cfg.Payload = DefaultPayload
	}
	if cfg.Clock == nil {
		cfg.Clock = wallClock
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Executor{tr: tr, cfg: cfg}, nil
}

// DefaultPayload is the executor's deterministic payload generator: a
// byte pattern keyed on (src, dst, offset), cheap to regenerate on the
// receive side for verification.
func DefaultPayload(src, dst int, size int64) []byte {
	if size <= 0 {
		return nil
	}
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(7*src + 13*dst + 31*i + 5)
	}
	return b
}

// transfer is the executor's ledger entry for one (src, dst) cell of
// the size matrix. All mutable fields are guarded by run.mu.
type transfer struct {
	src, dst int
	size     int64

	applied bool // payload handed to the Deliver sink (exactly once)
	round   int  // plan round the applied attempt was sent under
	retries int  // extra attempts beyond the first, across rounds
	seconds float64 // measured wall of the successful attempt; 0 unless Samples is armed
}

// run is the state of one exchange execution.
type run struct {
	ex    *Executor
	xid   uint64
	n     int
	ctx   context.Context // exchange-scoped; carries the request trace
	trace uint64          // trace ID for flight events and the report

	mu         sync.Mutex // guards alive, deadReason, st fields, dup, aborted — never held across I/O
	alive      []bool
	deadReason []string
	st         [][]*transfer
	dup        int  // duplicate applies suppressed by the ledger
	aborted    bool // a death invalidated the current round's plan

	sendSem []chan struct{} // the port model: one active send per node
	recvSem []chan struct{} // and one active receive per node
	closing chan struct{}   // closed when rounds are done; frees semaphore waiters

	recvWindow time.Duration // receive-side deadline bound

	rngMu sync.Mutex
	rng   *rand.Rand

	acceptWg  sync.WaitGroup
	handlerWg sync.WaitGroup
}

// Run executes the planned exchange: res is the schedule to honor, m
// the communication-time matrix it was planned from (reused for
// residual replans), sizes the byte counts to move. It blocks until
// every byte is delivered, rerouted, or abandoned, then reports. ctx
// carries request-scoped trace correlation (obs.TraceContext /
// obs.ReqTrace): when present, the exchange, each round, and each
// transfer land on the request's span tree, flight events are tagged
// with the trace ID, and the report echoes it.
func (e *Executor) Run(ctx context.Context, res *sched.Result, m *model.Matrix, sizes *model.Sizes) (*DeliveryReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if res == nil || res.Schedule == nil || m == nil || sizes == nil {
		return nil, errors.New("exec: nil plan, matrix, or sizes")
	}
	n := e.tr.N()
	if res.Schedule.N != n || m.N() != n || sizes.N() != n {
		return nil, fmt.Errorf("exec: transport has %d nodes but plan=%d matrix=%d sizes=%d",
			n, res.Schedule.N, m.N(), sizes.N())
	}
	maxRounds := e.cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = n
		if maxRounds < 1 {
			maxRounds = 1
		}
	}

	r := &run{
		ex:         e,
		xid:        e.xid.Add(1),
		n:          n,
		alive:      make([]bool, n),
		deadReason: make([]string, n),
		st:         make([][]*transfer, n),
		sendSem:    make([]chan struct{}, n),
		recvSem:    make([]chan struct{}, n),
		closing:    make(chan struct{}),
		rng:        rand.New(rand.NewSource(e.cfg.Seed)),
	}
	maxModeled := 0.0
	for i := 0; i < n; i++ {
		r.alive[i] = true
		r.st[i] = make([]*transfer, n)
		r.sendSem[i] = make(chan struct{}, 1)
		r.recvSem[i] = make(chan struct{}, 1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r.st[i][j] = &transfer{src: i, dst: j, size: sizes.At(i, j)}
			if d := m.At(i, j); d > maxModeled {
				maxModeled = d
			}
		}
	}
	r.recvWindow = r.attemptDeadline(maxModeled) + e.cfg.MinDeadline

	span := e.cfg.Tracer.Begin("exec", "exchange", obs.L("transport", fmt.Sprintf("%T", e.tr)))
	ctx, xsp := obs.StartSpan(ctx, "exec", "exchange")
	r.ctx = ctx
	r.trace = obs.TraceFrom(ctx).TraceID
	start := e.cfg.Clock()

	r.acceptWg.Add(n)
	for node := 0; node < n; node++ {
		go r.acceptLoop(node)
	}

	plan := res
	rounds, replans := 0, 0
	for round := 0; round < maxRounds; round++ {
		_, rsp := obs.StartSpan(ctx, "exec", "round")
		r.runRound(round, plan)
		rsp.End()
		rounds++
		residual := r.residualPattern()
		if len(residual) == 0 {
			break
		}
		if round+1 >= maxRounds {
			break
		}
		next, err := e.cfg.Replan(m, residual, r.isAlive)
		if err != nil {
			e.cfg.Tracer.Instant("exec", "replan failed", obs.L("error", err.Error()))
			obs.Mark(ctx, "exec", "replan_failed", err.Error())
			break
		}
		replans++
		e.counter(MetricExecReplans).Inc()
		e.cfg.Tracer.Instant("exec", "replan", obs.L("pairs", fmt.Sprintf("%d", len(residual))))
		obs.Mark(ctx, "exec", "replan", "")
		e.cfg.Flight.Record("exec", "replan", r.trace, int64(len(residual)), int64(round))
		plan = next
	}

	close(r.closing)
	if err := e.tr.Close(); err != nil {
		return nil, fmt.Errorf("exec: closing transport: %w", err)
	}
	r.acceptWg.Wait()
	r.handlerWg.Wait()

	rep := r.finalize(rounds, replans, res.CompletionTime(), e.cfg.Clock().Sub(start))
	rep.Trace = obs.FormatTraceID(r.trace)
	span.SetArg("dead", fmt.Sprintf("%d", len(rep.Dead)))
	span.End()
	xsp.End()
	e.cfg.Flight.Record("exec", "exchange_done", r.trace, rep.DeliveredBytes+rep.ReroutedBytes, int64(len(rep.Dead)))
	e.observeReport(rep)
	if e.cfg.Samples != nil {
		if samples := r.collectSamples(); len(samples) > 0 {
			e.cfg.Samples(samples)
		}
	}
	return rep, nil
}

// collectSamples folds the quiescent ledger into calibration samples:
// one per transfer whose successful attempt was measured, tagged with
// how the transfer resolved so the calibrator can refuse anything a
// fault touched. Ascending (src, dst) order keeps the feed
// deterministic for a deterministic exchange.
func (r *run) collectSamples() []calib.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []calib.Sample
	for src := 0; src < r.n; src++ {
		for dst := 0; dst < r.n; dst++ {
			t := r.st[src][dst]
			if t == nil || !t.applied || t.seconds <= 0 {
				continue
			}
			outcome := calib.OutcomeDelivered
			if t.round > 0 {
				outcome = calib.OutcomeRerouted
			}
			out = append(out, calib.Sample{
				Src: src, Dst: dst, Bytes: t.size,
				Seconds: t.seconds, Retries: t.retries,
				Outcome: outcome,
			})
		}
	}
	return out
}

// isAlive reports current liveness; safe from any goroutine.
func (r *run) isAlive(node int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return node >= 0 && node < r.n && r.alive[node]
}

// markDead records a node death once, with the first-observed reason,
// aborts the round (the death invalidates the plan's port pairings, so
// the remainder is residual work to re-plan among survivors), and
// severs the node at the transport so subsequent dials fail fast. The
// transport call happens outside the lock.
func (r *run) markDead(node int, reason string) {
	if node < 0 || node >= r.n {
		return
	}
	r.mu.Lock()
	already := !r.alive[node]
	if !already {
		r.alive[node] = false
		r.deadReason[node] = reason
		r.aborted = true
	}
	r.mu.Unlock()
	if already {
		return
	}
	r.ex.counter(MetricExecPeerDeaths).Inc()
	r.ex.cfg.Tracer.Instant("exec", "peer dead",
		obs.L("node", fmt.Sprintf("%d", node)), obs.L("reason", reason))
	obs.Mark(r.ctx, "exec", "peer_dead", reason)
	r.ex.cfg.Flight.Record("exec", "peer_dead", r.trace, int64(node), 0)
	r.ex.tr.Kill(node)
}

// residualPattern snapshots the undelivered survivor-to-survivor pairs.
func (r *run) residualPattern() sched.Pattern {
	r.mu.Lock()
	alive := append([]bool(nil), r.alive...)
	applied := make([]bool, r.n*r.n)
	for i := 0; i < r.n; i++ {
		for j := 0; j < r.n; j++ {
			if t := r.st[i][j]; t != nil && t.applied {
				applied[i*r.n+j] = true
			}
		}
	}
	r.mu.Unlock()
	return sched.ResidualPattern(r.n,
		func(i int) bool { return alive[i] },
		func(i, j int) bool { return applied[i*r.n+j] })
}

// attemptDeadline converts a modeled duration (seconds) into the wall
// budget for one attempt.
func (r *run) attemptDeadline(modeled float64) time.Duration {
	d := time.Duration(modeled * r.ex.cfg.Slack * float64(time.Second))
	if d < r.ex.cfg.MinDeadline {
		d = r.ex.cfg.MinDeadline
	}
	return d
}

// backoff returns the sleep before retry number attempt+1: the base
// doubled per attempt (capped at 1s) plus seeded jitter in [0, base).
func (r *run) backoff(attempt int) time.Duration {
	base := r.ex.cfg.Backoff
	for i := 0; i < attempt && base < time.Second; i++ {
		base *= 2
	}
	if base > time.Second {
		base = time.Second
	}
	r.rngMu.Lock()
	j := time.Duration(r.rng.Int63n(int64(r.ex.cfg.Backoff)))
	r.rngMu.Unlock()
	return base + j
}

// roundAborted reports whether a death has invalidated the round's
// plan since the round started.
func (r *run) roundAborted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.aborted
}

// runRound executes one plan round: each alive sender walks its own
// events in start order (its send column of the timing diagram), all
// senders concurrently. The round ends when every sender column is
// drained — or early, when a death aborts the plan and leaves the
// remainder as residual work.
func (r *run) runRound(round int, plan *sched.Result) {
	r.mu.Lock()
	r.aborted = false
	r.mu.Unlock()
	perSender := make([][]timing.Event, r.n)
	for _, e := range plan.Schedule.ByStart() {
		perSender[e.Src] = append(perSender[e.Src], e)
	}
	var wg sync.WaitGroup
	for src := 0; src < r.n; src++ {
		if len(perSender[src]) == 0 || !r.isAlive(src) {
			continue
		}
		wg.Add(1)
		go func(src int, evs []timing.Event) {
			defer wg.Done()
			r.sendLoop(round, src, evs)
		}(src, perSender[src])
	}
	wg.Wait()
}

// sendLoop drains one sender's column for the round, stopping when a
// death aborts the plan and skipping pairs that died or were already
// applied (a retry whose ack was lost may have landed).
func (r *run) sendLoop(round, src int, evs []timing.Event) {
	for _, e := range evs {
		if r.roundAborted() || !r.isAlive(src) {
			return
		}
		if !r.isAlive(e.Dst) {
			continue
		}
		t := r.st[src][e.Dst]
		r.mu.Lock()
		done := t.applied
		r.mu.Unlock()
		if done {
			continue
		}
		r.sendOne(round, t, e.Duration())
	}
}

// sendOne pushes one transfer through the attempt/retry ladder while
// holding the sender's port semaphore.
func (r *run) sendOne(round int, t *transfer, modeled float64) {
	select {
	case r.sendSem[t.src] <- struct{}{}:
	case <-r.closing:
		return
	}
	defer func() { <-r.sendSem[t.src] }()

	_, tsp := obs.StartSpan(r.ctx, "exec", "transfer")
	if tsp != nil {
		tsp.SetNote(fmt.Sprintf("%d to %d", t.src, t.dst))
	}
	defer tsp.End()
	deadline := r.attemptDeadline(modeled)
	measure := r.ex.cfg.Samples != nil
	for attempt := 0; ; attempt++ {
		var began time.Time
		if measure {
			began = r.ex.cfg.Clock()
		}
		err := r.attempt(round, attempt, t, deadline)
		r.ex.counter(MetricExecAttempts).Inc()
		if err == nil {
			if measure {
				elapsed := r.ex.cfg.Clock().Sub(began).Seconds()
				r.mu.Lock()
				t.seconds = elapsed
				r.mu.Unlock()
			}
			return
		}
		if errors.Is(err, ErrTransportClosed) {
			return
		}
		var pd *PeerDeadError
		if errors.As(err, &pd) {
			r.markDead(pd.Node, fmt.Sprintf("transport: %v", err))
			return
		}
		if attempt >= r.ex.cfg.MaxRetries {
			r.markDead(t.dst, fmt.Sprintf("unreachable after %d attempts: %v", attempt+1, err))
			return
		}
		r.noteRetry(t)
		r.ex.cfg.Sleep(r.backoff(attempt))
	}
}

// noteRetry counts one extra attempt against the transfer.
func (r *run) noteRetry(t *transfer) {
	r.mu.Lock()
	t.retries++
	r.mu.Unlock()
	r.ex.counter(MetricExecRetries).Inc()
	obs.Mark(r.ctx, "exec", "retry", "")
}

// attempt performs one transfer attempt over a fresh connection: dial,
// deadline, header + payload out, ack back. Any error is retriable
// unless it classifies as peer-dead or transport-closed.
func (r *run) attempt(round, attempt int, t *transfer, deadline time.Duration) error {
	c, err := r.ex.tr.Dial(t.src, t.dst)
	if err != nil {
		return err
	}
	defer severAll([]net.Conn{c})
	if err := c.SetDeadline(r.ex.cfg.Clock().Add(deadline)); err != nil {
		return fmt.Errorf("exec: set deadline %d→%d: %w", t.src, t.dst, err)
	}
	h := frameHeader{Exchange: r.xid, Src: t.src, Dst: t.dst, Round: round, Attempt: attempt, Size: t.size}
	if err := writeLine(c, h); err != nil {
		return err
	}
	if t.size > 0 {
		if _, err := c.Write(r.ex.cfg.Payload(t.src, t.dst, t.size)); err != nil {
			return fmt.Errorf("exec: write payload %d→%d: %w", t.src, t.dst, err)
		}
	}
	var ack frameAck
	if err := readLine(newFrameReader(c), &ack); err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("exec: receiver rejected %d→%d: %s", t.src, t.dst, ack.Error)
	}
	return nil
}

// acceptLoop owns one node's inbound connection stream for the life of
// the run.
func (r *run) acceptLoop(node int) {
	defer r.acceptWg.Done()
	for {
		c, err := r.ex.tr.Accept(node)
		if err != nil {
			return
		}
		r.handlerWg.Add(1)
		go r.handle(node, c)
	}
}

// handle serves one inbound connection: acquire the node's receive
// port, read and verify one transfer, apply it through the ledger, and
// ack. The connection always closes here.
func (r *run) handle(node int, c net.Conn) {
	defer r.handlerWg.Done()
	defer severAll([]net.Conn{c})
	select {
	case r.recvSem[node] <- struct{}{}:
	case <-r.closing:
		return
	}
	defer func() { <-r.recvSem[node] }()
	if err := c.SetDeadline(r.ex.cfg.Clock().Add(r.recvWindow)); err != nil {
		return
	}
	br := newFrameReader(c)
	var h frameHeader
	if err := readLine(br, &h); err != nil {
		return
	}
	ack := r.receive(node, br, h)
	if err := writeLine(c, ack); err != nil {
		return
	}
}

// receive validates a header against the run, reads and verifies the
// payload, and applies it exactly once through the ledger.
func (r *run) receive(node int, br io.Reader, h frameHeader) frameAck {
	reject := func(format string, args ...any) frameAck {
		return frameAck{OK: false, Error: fmt.Sprintf(format, args...)}
	}
	if h.Exchange != r.xid {
		return reject("exchange %d, want %d", h.Exchange, r.xid)
	}
	if h.Dst != node {
		return reject("misrouted: header says dst %d at node %d", h.Dst, node)
	}
	if h.Src < 0 || h.Src >= r.n || h.Src == node {
		return reject("invalid src %d", h.Src)
	}
	t := r.st[h.Src][h.Dst]
	if h.Size != t.size {
		return reject("size %d, sizes matrix says %d", h.Size, t.size)
	}
	var payload []byte
	if h.Size > 0 {
		payload = make([]byte, h.Size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return reject("short payload: %v", err)
		}
		if !bytes.Equal(payload, r.ex.cfg.Payload(h.Src, h.Dst, h.Size)) {
			return reject("payload corrupt")
		}
	}
	r.mu.Lock()
	dup := t.applied
	if dup {
		r.dup++
	} else {
		t.applied = true
		t.round = h.Round
	}
	r.mu.Unlock()
	if dup {
		return frameAck{OK: true, Dup: true}
	}
	if r.ex.cfg.Deliver != nil {
		r.ex.cfg.Deliver(h.Src, h.Dst, payload)
	}
	return frameAck{OK: true}
}

// finalize folds the ledger into the delivery report. It runs after
// every handler has exited, so the ledger is quiescent.
func (r *run) finalize(rounds, replans int, modeled float64, wall time.Duration) *DeliveryReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &DeliveryReport{
		N: r.n, Rounds: rounds, Replans: replans,
		Modeled: modeled, Wall: wall,
	}
	for node := 0; node < r.n; node++ {
		if !r.alive[node] {
			rep.Dead = append(rep.Dead, node)
		}
	}
	sort.Ints(rep.Dead)
	for dst := 0; dst < r.n; dst++ {
		d := DestReport{Dst: dst}
		seen := map[string]bool{}
		for src := 0; src < r.n; src++ {
			t := r.st[src][dst]
			if t == nil {
				continue
			}
			d.Transfers++
			d.Retries += t.retries
			rep.Retries += t.retries
			rep.TotalBytes += t.size
			if t.retries > 0 {
				d.Retried += t.size
				rep.RetriedBytes += t.size
			}
			switch {
			case t.applied && t.round == 0:
				d.Delivered += t.size
				rep.DeliveredBytes += t.size
				rep.DeliveredTransfers++
			case t.applied:
				d.Rerouted += t.size
				rep.ReroutedBytes += t.size
				rep.ReroutedTransfers++
			default:
				d.Abandoned += t.size
				rep.AbandonedBytes += t.size
				rep.AbandonedTransfers++
				reason := r.abandonReason(src, dst)
				if !seen[reason] {
					seen[reason] = true
					d.Reasons = append(d.Reasons, reason)
				}
			}
		}
		rep.Dests = append(rep.Dests, d)
	}
	rep.DupSuppressed = r.dup
	return rep
}

// abandonReason explains why a pending transfer can no longer move.
// Called with r.mu held.
func (r *run) abandonReason(src, dst int) string {
	switch {
	case !r.alive[dst]:
		return fmt.Sprintf("P%d dead: %s", dst, r.deadReason[dst])
	case !r.alive[src]:
		return fmt.Sprintf("sender P%d dead: %s", src, r.deadReason[src])
	default:
		return "rounds exhausted"
	}
}
