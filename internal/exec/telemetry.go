package exec

import (
	"hetsched/internal/obs"
)

// Re-exported metric family names, so exec callers don't import obs
// just to find them. Declared in obs/families.go with the rest of the
// canonical surface.
const (
	MetricExecTransfers  = obs.MetricExecTransfers
	MetricExecAttempts   = obs.MetricExecAttempts
	MetricExecRetries    = obs.MetricExecRetries
	MetricExecBytes      = obs.MetricExecBytes
	MetricExecPeerDeaths = obs.MetricExecPeerDeaths
	MetricExecReplans    = obs.MetricExecReplans
	MetricExecWallRatio  = obs.MetricExecWallRatio
)

// counter fetches an exec counter from the configured registry;
// nil-safe end to end.
func (e *Executor) counter(name string, labels ...obs.Label) *obs.Counter {
	return e.cfg.Metrics.Counter(name, "exec data-plane counter", labels...)
}

// observeReport folds a finished exchange's accounting into the metric
// surface: transfers and bytes by outcome, and the measured wall-clock
// to modeled-t_max ratio.
func (e *Executor) observeReport(rep *DeliveryReport) {
	if e.cfg.Metrics == nil {
		return
	}
	outcome := func(name string, transfers int, bytes int64) {
		l := obs.L("outcome", name)
		e.counter(MetricExecTransfers, l).Add(uint64(transfers))
		e.counter(MetricExecBytes, l).Add(uint64(bytes))
	}
	outcome("delivered", rep.DeliveredTransfers, rep.DeliveredBytes)
	outcome("rerouted", rep.ReroutedTransfers, rep.ReroutedBytes)
	outcome("abandoned", rep.AbandonedTransfers, rep.AbandonedBytes)
	if rep.Modeled > 0 {
		e.cfg.Metrics.Histogram(MetricExecWallRatio,
			"Measured wall clock over modeled t_max per exchange.",
			obs.RatioBuckets).Observe(rep.Ratio())
	}
}
