package exec

import (
	"bufio"
	"fmt"
	"io"

	"hetsched/internal/directory"
)

// Wire format. Each connection carries exactly one transfer attempt:
// the sender writes a header — one newline-terminated JSON line, the
// same framing primitive as the directory protocol
// (directory.EncodeLine) — whose Size field length-prefixes the raw
// payload bytes that follow. The receiver answers with one JSON ack
// line and the connection is done.
//
//	→ {"xid":3,"src":0,"dst":4,"round":1,"attempt":0,"size":1024}\n
//	→ <1024 raw payload bytes>
//	← {"ok":true}\n            (or {"ok":true,"dup":true}, or
//	                            {"ok":false,"error":"..."})

// maxHeaderLine bounds a header or ack line; anything longer is a
// corrupt or hostile stream.
const maxHeaderLine = 4096

// frameHeader announces one transfer attempt.
type frameHeader struct {
	Exchange uint64 `json:"xid"`
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Round    int    `json:"round"`
	Attempt  int    `json:"attempt"`
	Size     int64  `json:"size"`
}

// frameAck is the receiver's verdict on one attempt. Dup marks a
// retry of a payload the receive ledger had already applied — the
// sender treats it as success, the receiver did not apply it twice.
type frameAck struct {
	OK    bool   `json:"ok"`
	Dup   bool   `json:"dup,omitempty"`
	Error string `json:"error,omitempty"`
}

// writeLine encodes v as one JSON wire line and writes it.
func writeLine(w io.Writer, v any) error {
	b, err := directory.EncodeLine(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("exec: write frame line: %w", err)
	}
	return nil
}

// readLine reads one newline-terminated wire line into v.
func readLine(br *bufio.Reader, v any) error {
	line, err := br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return fmt.Errorf("exec: frame line exceeds %d bytes", maxHeaderLine)
		}
		return fmt.Errorf("exec: read frame line: %w", err)
	}
	if err := directory.DecodeLine(line, v); err != nil {
		return fmt.Errorf("exec: malformed frame line: %w", err)
	}
	return nil
}

// newFrameReader wraps a connection for line + payload reads, with the
// buffer sized to the header bound.
func newFrameReader(r io.Reader) *bufio.Reader {
	return bufio.NewReaderSize(r, maxHeaderLine)
}
