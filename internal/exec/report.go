package exec

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// DestReport accounts for every byte addressed to one destination
// node. Delivered, Rerouted, and Abandoned partition the destination's
// column of the size matrix; Retried overlaps them (bytes of transfers
// that needed at least one retry before resolving).
type DestReport struct {
	Dst       int
	Delivered int64 // bytes applied under the original plan (round 0)
	Rerouted  int64 // bytes applied under a replanned residual schedule
	Abandoned int64 // bytes that could not move, with Reasons
	Retried   int64
	Transfers int // transfers addressed to this destination
	Retries   int // extra attempts across those transfers
	Reasons   []string
}

// DeliveryReport is the executor's full accounting of one exchange:
// what the data plane actually did with every byte the size matrix
// promised, and how the measured wall clock compares to the plan's
// modeled completion time.
type DeliveryReport struct {
	N       int
	Rounds  int   // plan rounds executed; 1 means no replan was needed
	Replans int   // residual replans (Rounds - 1)
	Dead    []int // nodes declared dead, ascending

	TotalBytes     int64
	DeliveredBytes int64
	ReroutedBytes  int64
	AbandonedBytes int64
	RetriedBytes   int64
	Retries        int
	DupSuppressed  int // duplicate payloads absorbed by the receive ledger

	// Transfer counts by outcome (not rendered; metrics and tests).
	DeliveredTransfers int
	ReroutedTransfers  int
	AbandonedTransfers int

	Modeled float64       // modeled t_max of the original plan, seconds
	Wall    time.Duration // measured wall clock for the exchange

	// Trace is the request trace ID the exchange ran under (16 hex
	// digits), empty when the exchange was untraced.
	Trace string

	Dests []DestReport // per destination, ascending by node
}

// Accounted reports whether delivered + rerouted + abandoned bytes
// exactly partition the exchange's total — the executor's core
// guarantee, asserted by the chaos tests.
func (r *DeliveryReport) Accounted() bool {
	return r.DeliveredBytes+r.ReroutedBytes+r.AbandonedBytes == r.TotalBytes
}

// Ratio returns measured wall clock over modeled t_max. When the model
// predicts nothing (Modeled <= 0, a degenerate plan) the ratio is
// undefined and Ratio returns NaN: the old 0 sentinel read as
// "infinitely fast" in telemetry and averaged real exchanges down.
// Callers recording the ratio must skip NaN (observeReport does).
func (r *DeliveryReport) Ratio() float64 {
	if r.Modeled <= 0 {
		return math.NaN()
	}
	return r.Wall.Seconds() / r.Modeled
}

// Render writes the human-readable report. The layout is locked by a
// golden test; change it deliberately.
func (r *DeliveryReport) Render(w io.Writer) {
	dead := "none"
	if len(r.Dead) > 0 {
		parts := make([]string, len(r.Dead))
		for i, d := range r.Dead {
			parts[i] = fmt.Sprintf("P%d", d)
		}
		dead = strings.Join(parts, ",")
	}
	fmt.Fprintf(w, "delivery report: P=%d, %d round(s), %d replan(s), dead: %s\n",
		r.N, r.Rounds, r.Replans, dead)
	if r.Trace != "" {
		fmt.Fprintf(w, "  trace: %s\n", r.Trace)
	}
	fmt.Fprintf(w, "  bytes: %d total = %d delivered + %d rerouted + %d abandoned (%d retried, %d retries, %d dup suppressed)\n",
		r.TotalBytes, r.DeliveredBytes, r.ReroutedBytes, r.AbandonedBytes,
		r.RetriedBytes, r.Retries, r.DupSuppressed)
	ratio := "n/a"
	if v := r.Ratio(); !math.IsNaN(v) {
		ratio = fmt.Sprintf("%.3g", v)
	}
	fmt.Fprintf(w, "  time: %.4g s measured vs %.4g s modeled t_max (ratio %s)\n",
		r.Wall.Seconds(), r.Modeled, ratio)
	fmt.Fprintf(w, "  %-5s %10s %10s %10s %8s  %s\n",
		"dst", "delivered", "rerouted", "abandoned", "retries", "reasons")
	for _, d := range r.Dests {
		line := fmt.Sprintf("  P%-4d %10d %10d %10d %8d  %s",
			d.Dst, d.Delivered, d.Rerouted, d.Abandoned, d.Retries,
			strings.Join(d.Reasons, "; "))
		fmt.Fprintf(w, "%s\n", strings.TrimRight(line, " "))
	}
}

// String renders the report to a string.
func (r *DeliveryReport) String() string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}
