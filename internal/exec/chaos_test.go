package exec

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosTrial executes one seeded exchange with mid-exchange node kills
// triggered from the delivery stream, then checks the executor's core
// guarantee: every survivor-to-survivor pair is delivered exactly once
// with the right bytes, and the report partitions every byte.
func chaosTrial(t *testing.T, seed int64, newTransport func(n int) (Transport, error)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(4) // 4..7
	kills := 1 + rng.Intn(n-2)
	res, m, sizes := testProblem(t, n)
	tr, err := newTransport(n)
	if err != nil {
		t.Fatal(err)
	}
	victims := rng.Perm(n)[:kills]
	total := n * (n - 1)
	triggers := make([]int, kills)
	for i := range triggers {
		triggers[i] = 1 + rng.Intn(total/2)
	}

	s := newSink(t)
	var (
		mu        sync.Mutex
		delivered int
		next      int
	)
	cfg := Config{
		Seed:        seed,
		MinDeadline: 250 * time.Millisecond,
		Backoff:     time.Millisecond,
	}
	cfg.Deliver = func(src, dst int, payload []byte) {
		s.deliver(src, dst, payload)
		mu.Lock()
		delivered++
		kill := -1
		if next < len(victims) && delivered >= triggers[next] {
			kill = victims[next]
			next++
		}
		mu.Unlock()
		if kill >= 0 {
			tr.Kill(kill)
		}
	}
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		t.Fatal(err)
	}

	if !rep.Accounted() {
		t.Fatalf("seed %d: bytes not partitioned:\n%s", seed, rep)
	}
	dead := make([]bool, n)
	for _, d := range rep.Dead {
		dead[d] = true
	}
	if len(rep.Dead) > n-2 {
		t.Fatalf("seed %d: %d dead of %d nodes — fewer than 2 survivors", seed, len(rep.Dead), n)
	}
	var sinkBytes int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sz, ok := s.got(i, j)
			if ok {
				if sz != sizes.At(i, j) {
					t.Fatalf("seed %d: pair %d→%d delivered %d bytes, want %d", seed, i, j, sz, sizes.At(i, j))
				}
				sinkBytes += sz
			}
			if !dead[i] && !dead[j] && !ok {
				t.Fatalf("seed %d: survivor pair %d→%d never delivered\n%s", seed, i, j, rep)
			}
		}
	}
	if got := rep.DeliveredBytes + rep.ReroutedBytes; got != sinkBytes {
		t.Fatalf("seed %d: report says %d bytes moved, sink saw %d", seed, got, sinkBytes)
	}
	for _, d := range rep.Dests {
		if d.Abandoned > 0 && len(d.Reasons) == 0 {
			t.Fatalf("seed %d: abandoned bytes at P%d carry no reason", seed, d.Dst)
		}
	}
}

func TestExecChaosMemKillsMidExchange(t *testing.T) {
	trials := int64(12)
	if testing.Short() {
		trials = 4
	}
	for seed := int64(1); seed <= trials; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			chaosTrial(t, seed, func(n int) (Transport, error) { return NewMem(n) })
		})
	}
}

func TestExecChaosTCPKillsMidExchange(t *testing.T) {
	trials := int64(6)
	if testing.Short() {
		trials = 2
	}
	for seed := int64(100); seed < 100+trials; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			chaosTrial(t, seed, func(n int) (Transport, error) { return NewTCP(n) })
		})
	}
}

// TestExecChaosReplanReroutesResidual pins the recovery path itself: a
// kill early in the exchange must force at least one residual replan,
// and the replanned rounds must carry bytes (rerouted, not just
// delivered in round 0) — the tentpole behavior, not a vacuous pass.
func TestExecChaosReplanReroutesResidual(t *testing.T) {
	const n = 6
	res, m, sizes := testProblem(t, n)
	tr, err := NewMem(n)
	if err != nil {
		t.Fatal(err)
	}
	s := newSink(t)
	var once sync.Once
	cfg := fastCfg()
	cfg.Seed = 42
	cfg.Deliver = func(src, dst int, payload []byte) {
		s.deliver(src, dst, payload)
		once.Do(func() { tr.Kill(0) }) // first delivery kills P0
	}
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replans == 0 {
		t.Fatalf("early kill forced no replan:\n%s", rep)
	}
	if rep.ReroutedBytes == 0 {
		t.Fatalf("replan carried no bytes:\n%s", rep)
	}
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			if i == j {
				continue
			}
			if _, ok := s.got(i, j); !ok {
				t.Fatalf("survivor pair %d→%d lost:\n%s", i, j, rep)
			}
		}
	}
}

// ackDropConn fails a connection's first write. On the accept side the
// first (and only) write is the ack, so the payload lands but the
// sender never hears — it must retry, and the receive ledger must
// absorb the duplicate.
type ackDropConn struct {
	net.Conn
	budget *atomic.Int32 // shared across conns; one drop per unit
	used   atomic.Bool
}

func (c *ackDropConn) Write(p []byte) (int, error) {
	if !c.used.Swap(true) && c.budget.Add(-1) >= 0 {
		return 0, errors.New("injected ack loss")
	}
	return c.Conn.Write(p)
}

func TestExecDuplicateSuppression(t *testing.T) {
	const n = 3
	res, m, sizes := testProblem(t, n)
	tr, err := NewMem(n)
	if err != nil {
		t.Fatal(err)
	}
	var budget atomic.Int32
	budget.Store(2)
	tr.SetConnWrapper(func(c net.Conn) net.Conn {
		return &ackDropConn{Conn: c, budget: &budget}
	})
	s := newSink(t)
	cfg := fastCfg()
	cfg.Deliver = s.deliver
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DupSuppressed < 2 {
		t.Fatalf("ledger suppressed %d duplicates, want >= 2:\n%s", rep.DupSuppressed, rep)
	}
	if rep.Retries < 2 {
		t.Fatalf("retries %d, want >= 2", rep.Retries)
	}
	// Exactly-once held anyway: the sink (which fails on double
	// delivery) saw every pair, and every byte moved.
	if s.count() != n*(n-1) || rep.DeliveredBytes+rep.ReroutedBytes != sizes.TotalBytes() {
		t.Fatalf("pairs=%d moved=%d want pairs=%d moved=%d:\n%s",
			s.count(), rep.DeliveredBytes+rep.ReroutedBytes, n*(n-1), sizes.TotalBytes(), rep)
	}
	if rep.RetriedBytes == 0 {
		t.Fatal("retried bytes not accounted")
	}
}
