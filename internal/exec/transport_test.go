package exec

import (
	"errors"
	"testing"
	"time"
)

// transports under test, by constructor.
func transportsUnderTest() map[string]func(n int) (Transport, error) {
	return map[string]func(n int) (Transport, error){
		"mem": func(n int) (Transport, error) { return NewMem(n) },
		"tcp": func(n int) (Transport, error) { return NewTCP(n) },
	}
}

func TestExecTransportRoundTrip(t *testing.T) {
	for _, name := range []string{"mem", "tcp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := transportsUnderTest()[name](3)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			if tr.N() != 3 {
				t.Fatalf("N=%d", tr.N())
			}
			done := make(chan error, 1)
			go func() {
				c, err := tr.Accept(1)
				if err != nil {
					done <- err
					return
				}
				defer c.Close()
				buf := make([]byte, 5)
				if _, err := c.Read(buf); err != nil {
					done <- err
					return
				}
				_, err = c.Write(buf)
				done <- err
			}()
			c, err := tr.Dial(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Write([]byte("hello")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 5)
			if _, err := c.Read(buf); err != nil {
				t.Fatal(err)
			}
			if string(buf) != "hello" {
				t.Fatalf("echoed %q", buf)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExecTransportKillSemantics(t *testing.T) {
	for _, name := range []string{"mem", "tcp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := transportsUnderTest()[name](3)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			acceptErr := make(chan error, 1)
			go func() {
				_, err := tr.Accept(1)
				acceptErr <- err
			}()
			tr.Kill(1)
			tr.Kill(1) // idempotent
			var pd *PeerDeadError
			if _, err := tr.Dial(0, 1); !errors.As(err, &pd) || pd.Node != 1 {
				t.Fatalf("dial to killed node: %v", err)
			}
			if _, err := tr.Dial(1, 0); !errors.As(err, &pd) || pd.Node != 1 {
				t.Fatalf("dial from killed node: %v", err)
			}
			select {
			case err := <-acceptErr:
				if !errors.Is(err, ErrPeerDead) {
					t.Fatalf("accept at killed node: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("accept did not observe the kill")
			}
			// Other nodes keep working.
			go func() {
				c, err := tr.Accept(2)
				if err == nil {
					c.Close()
				}
			}()
			c, err := tr.Dial(0, 2)
			if err != nil {
				t.Fatalf("survivor dial failed: %v", err)
			}
			c.Close()
		})
	}
}

func TestExecTransportCloseSemantics(t *testing.T) {
	for _, name := range []string{"mem", "tcp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := transportsUnderTest()[name](2)
			if err != nil {
				t.Fatal(err)
			}
			acceptErr := make(chan error, 1)
			go func() {
				_, err := tr.Accept(0)
				acceptErr <- err
			}()
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal("second close must be a no-op:", err)
			}
			if _, err := tr.Dial(0, 1); !errors.Is(err, ErrTransportClosed) {
				t.Fatalf("dial after close: %v", err)
			}
			select {
			case err := <-acceptErr:
				// Either classification is acceptable post-close for a
				// node that was never killed, but it must be terminal.
				if !errors.Is(err, ErrTransportClosed) && !errors.Is(err, ErrPeerDead) {
					t.Fatalf("accept after close: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("accept did not observe the close")
			}
		})
	}
}

func TestExecTransportInvalidLinks(t *testing.T) {
	tr, err := NewMem(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, pair := range [][2]int{{0, 0}, {-1, 1}, {0, 3}} {
		if _, err := tr.Dial(pair[0], pair[1]); err == nil {
			t.Fatalf("dial %v accepted", pair)
		}
	}
	if _, err := tr.Accept(9); err == nil {
		t.Fatal("accept at invalid node accepted")
	}
	if _, err := NewMem(-1); err == nil {
		t.Fatal("negative node count accepted")
	}
	if _, err := NewTCP(-1); err == nil {
		t.Fatal("negative node count accepted")
	}
}

func TestExecPeerDeadErrorIdentity(t *testing.T) {
	err := error(&PeerDeadError{Node: 3})
	if !errors.Is(err, ErrPeerDead) {
		t.Fatal("errors.Is failed")
	}
	var pd *PeerDeadError
	if !errors.As(err, &pd) || pd.Node != 3 {
		t.Fatal("errors.As failed")
	}
	if err.Error() == "" {
		t.Fatal("empty message")
	}
}
