package exec

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"hetsched/internal/faults"
	"hetsched/internal/model"
	"hetsched/internal/obs"
	"hetsched/internal/sched"
)

// testProblem builds a small heterogeneous instance: a cost matrix
// with per-pair variation, a size matrix with distinct byte counts,
// and an open shop plan for them.
func testProblem(t *testing.T, n int) (*sched.Result, *model.Matrix, *model.Sizes) {
	t.Helper()
	m := model.NewMatrix(n)
	sizes := model.NewSizes(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			m.Set(i, j, 0.0001*float64(1+(i+2*j)%4))
			sizes.Set(i, j, int64(64*(1+(i*n+j)%5)))
		}
	}
	res, err := sched.NewOpenShop().Schedule(m)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return res, m, sizes
}

// sink records deliveries with full concurrency checking: a pair
// delivered twice fails the test immediately.
type sink struct {
	t  *testing.T
	mu sync.Mutex
	by map[[2]int]int64
}

func newSink(t *testing.T) *sink { return &sink{t: t, by: map[[2]int]int64{}} }

func (s *sink) deliver(src, dst int, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := [2]int{src, dst}
	if _, dup := s.by[key]; dup {
		s.t.Errorf("pair %d→%d delivered twice", src, dst)
	}
	s.by[key] = int64(len(payload))
}

func (s *sink) got(src, dst int) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sz, ok := s.by[[2]int{src, dst}]
	return sz, ok
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.by)
}

// fastCfg keeps retry/deadline waits test-sized.
func fastCfg() Config {
	return Config{
		MinDeadline: 250 * time.Millisecond,
		Backoff:     time.Millisecond,
	}
}

func TestExecMemDeliversEverything(t *testing.T) {
	const n = 5
	res, m, sizes := testProblem(t, n)
	tr, err := NewMem(n)
	if err != nil {
		t.Fatal(err)
	}
	s := newSink(t)
	cfg := fastCfg()
	cfg.Deliver = s.deliver
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accounted() {
		t.Fatalf("bytes not partitioned: %+v", rep)
	}
	if rep.DeliveredBytes != sizes.TotalBytes() || rep.AbandonedBytes != 0 {
		t.Fatalf("delivered %d of %d, abandoned %d", rep.DeliveredBytes, sizes.TotalBytes(), rep.AbandonedBytes)
	}
	if rep.Rounds != 1 || rep.Replans != 0 || len(rep.Dead) != 0 {
		t.Fatalf("clean run reported rounds=%d replans=%d dead=%v", rep.Rounds, rep.Replans, rep.Dead)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if sz, ok := s.got(i, j); !ok || sz != sizes.At(i, j) {
				t.Fatalf("pair %d→%d: got %d bytes (present=%v), want %d", i, j, sz, ok, sizes.At(i, j))
			}
		}
	}
	if rep.Wall <= 0 {
		t.Fatalf("non-positive wall clock %v", rep.Wall)
	}
}

func TestExecTCPDeliversEverything(t *testing.T) {
	const n = 4
	res, m, sizes := testProblem(t, n)
	tr, err := NewTCP(n)
	if err != nil {
		t.Fatal(err)
	}
	s := newSink(t)
	cfg := fastCfg()
	cfg.Deliver = s.deliver
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeliveredBytes != sizes.TotalBytes() || rep.AbandonedBytes != 0 {
		t.Fatalf("delivered %d of %d, abandoned %d", rep.DeliveredBytes, sizes.TotalBytes(), rep.AbandonedBytes)
	}
	if s.count() != n*(n-1) {
		t.Fatalf("sink saw %d pairs, want %d", s.count(), n*(n-1))
	}
}

func TestExecZeroSizeTransfers(t *testing.T) {
	const n = 4
	m := model.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.0001)
			}
		}
	}
	res, err := sched.NewOpenShop().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	sizes := model.NewSizes(n) // all zero
	tr, err := NewMem(n)
	if err != nil {
		t.Fatal(err)
	}
	s := newSink(t)
	cfg := fastCfg()
	cfg.Deliver = s.deliver
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes != 0 || rep.AbandonedBytes != 0 || len(rep.Dead) != 0 {
		t.Fatalf("zero-size exchange misreported: %+v", rep)
	}
	// Zero-byte transfers still complete the protocol exactly once each.
	if rep.DeliveredTransfers != n*(n-1) || s.count() != n*(n-1) {
		t.Fatalf("completed %d transfers, sink %d, want %d", rep.DeliveredTransfers, s.count(), n*(n-1))
	}
}

func TestExecValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil transport accepted")
	}
	tr, err := NewMem(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := New(tr, Config{MaxRetries: -1}); err == nil {
		t.Fatal("negative retries accepted")
	}
	if _, err := New(tr, Config{Slack: -1}); err == nil {
		t.Fatal("negative slack accepted")
	}
	ex, err := New(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(context.Background(), nil, nil, nil); err == nil {
		t.Fatal("nil plan accepted")
	}
	res, m, sizes := testProblem(t, 4) // transport has 3 nodes
	if _, err := ex.Run(context.Background(), res, m, sizes); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestExecLatencyDelaysStillDeliverEverything(t *testing.T) {
	const n = 4
	res, m, sizes := testProblem(t, n)
	tr, err := NewMem(n)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewLatencyInjector(faults.LatencyConfig{
		Seed:      7,
		DelayProb: 0.5,
		Delay:     time.Microsecond,
		Jitter:    time.Microsecond,
	})
	tr.SetConnWrapper(inj.Wrap)
	s := newSink(t)
	cfg := fastCfg()
	cfg.Deliver = s.deliver
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeliveredBytes+rep.ReroutedBytes != sizes.TotalBytes() {
		t.Fatalf("lost bytes under latency: %s", rep)
	}
	if inj.Counts().Delays == 0 {
		t.Fatal("injector never delayed")
	}
}

func TestExecStalledReceiverDeclaredDead(t *testing.T) {
	const n = 4
	res, m, sizes := testProblem(t, n)
	tr, err := NewMem(n)
	if err != nil {
		t.Fatal(err)
	}
	// Every receive-side operation hard-stalls: all inbound traffic is
	// silent, so every destination is eventually declared dead.
	inj := faults.NewLatencyInjector(faults.LatencyConfig{Seed: 3, StallProb: 1})
	tr.SetConnWrapper(inj.Wrap)
	cfg := Config{
		MinDeadline: 20 * time.Millisecond,
		MaxRetries:  1,
		Backoff:     time.Millisecond,
	}
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dead) == 0 {
		t.Fatalf("no node declared dead under total stall: %s", rep)
	}
	if rep.DeliveredBytes != 0 || rep.ReroutedBytes != 0 {
		t.Fatalf("bytes delivered through a total stall: %s", rep)
	}
	if !rep.Accounted() {
		t.Fatalf("bytes not partitioned: %s", rep)
	}
	if rep.Retries == 0 {
		t.Fatal("stalls never retried")
	}
	for _, d := range rep.Dests {
		if d.Abandoned > 0 && len(d.Reasons) == 0 {
			t.Fatalf("abandoned bytes at P%d carry no reason", d.Dst)
		}
	}
}

func TestExecMetricsRecorded(t *testing.T) {
	const n = 4
	res, m, sizes := testProblem(t, n)
	tr, err := NewMem(n)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	cfg := fastCfg()
	cfg.Metrics = reg
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(context.Background(), res, m, sizes); err != nil {
		t.Fatal(err)
	}
	delivered := reg.Counter(MetricExecTransfers, "", obs.L("outcome", "delivered")).Value()
	if delivered != uint64(n*(n-1)) {
		t.Fatalf("delivered transfer counter %d, want %d", delivered, n*(n-1))
	}
	attempts := reg.Counter(MetricExecAttempts, "").Value()
	if attempts < uint64(n*(n-1)) {
		t.Fatalf("attempt counter %d below transfer count", attempts)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hetsched_exec_bytes_total") {
		t.Fatal("exec bytes family missing from scrape")
	}
}
