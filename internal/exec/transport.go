package exec

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrPeerDead marks a transport-confirmed dead node: its endpoint has
// been killed and no connection to or from it can ever succeed again.
// Test with errors.Is; errors.As against *PeerDeadError recovers which
// node died.
var ErrPeerDead = errors.New("exec: peer dead")

// ErrTransportClosed is returned once a transport has been shut down.
var ErrTransportClosed = errors.New("exec: transport closed")

// PeerDeadError identifies the dead node behind an ErrPeerDead
// failure, so the executor knows which endpoint to drop from the plan.
type PeerDeadError struct {
	Node int
}

func (e *PeerDeadError) Error() string { return fmt.Sprintf("exec: peer P%d dead", e.Node) }

// Is makes errors.Is(err, ErrPeerDead) succeed on a PeerDeadError.
func (e *PeerDeadError) Is(target error) bool { return target == ErrPeerDead }

// Transport is the pluggable data plane the executor moves bytes over:
// a mesh of N node endpoints that can dial each other. Two transports
// ship with the package — Mem (synchronous in-process pipes, for tests
// and simulation-speed runs) and TCP (real loopback sockets with
// length-prefixed frames). Implementations must be safe for concurrent
// use; every method may be called from many executor goroutines.
type Transport interface {
	// N returns the number of node endpoints.
	N() int
	// Dial opens a connection from src to dst. After either endpoint
	// has been killed it fails with a *PeerDeadError naming the dead
	// node.
	Dial(src, dst int) (net.Conn, error)
	// Accept blocks for the next inbound connection at node. It
	// returns *PeerDeadError after the node is killed and
	// ErrTransportClosed after Close.
	Accept(node int) (net.Conn, error)
	// Kill makes node unreachable in both directions and severs its
	// open connections — the chaos harness's node-crash primitive.
	Kill(node int)
	// Close severs every connection and releases the endpoints. It is
	// idempotent.
	Close() error
}

// Mem is the in-process transport: every Dial produces a synchronous
// net.Pipe whose server half is delivered to the destination's Accept
// stream. An optional connection wrapper (faults.ConnInjector.Wrap or
// faults.LatencyInjector.Wrap) is applied to the accept-side half, the
// same seam directory.Server exposes, so chaos tests drive the
// executor without touching a real socket.
type Mem struct {
	n        int
	wrap     func(net.Conn) net.Conn
	pairWrap func(src, dst int, c net.Conn) net.Conn

	mu     sync.Mutex // guards dead, conns, closed — never held across I/O
	dead   []bool
	conns  [][]net.Conn
	closed bool

	inbox  []chan net.Conn
	killed []chan struct{} // closed on Kill(node)
	done   chan struct{}   // closed on Close
}

// NewMem creates an in-process transport for n nodes.
func NewMem(n int) (*Mem, error) {
	if n < 0 {
		return nil, fmt.Errorf("exec: negative node count %d", n)
	}
	t := &Mem{
		n:      n,
		dead:   make([]bool, n),
		conns:  make([][]net.Conn, n),
		inbox:  make([]chan net.Conn, n),
		killed: make([]chan struct{}, n),
		done:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		t.inbox[i] = make(chan net.Conn)
		t.killed[i] = make(chan struct{})
	}
	return t, nil
}

// SetConnWrapper installs a wrapper applied to the accept-side half of
// every future connection — the fault-injection seam. Call before the
// executor starts; nil restores the identity wrapper.
func (t *Mem) SetConnWrapper(wrap func(net.Conn) net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wrap = wrap
}

// SetPairWrapper installs a pair-aware wrapper applied to the
// accept-side half of every future connection, carrying the dialing
// (src, dst) identity — the seam a network emulator needs, since a
// plain SetConnWrapper cannot know which link a connection serves
// (faults.PairDelayInjector.WrapPair is the canonical user). Both
// wrappers may be set; the pair wrapper runs after the plain one. Call
// before the executor starts; nil removes it.
func (t *Mem) SetPairWrapper(wrap func(src, dst int, c net.Conn) net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pairWrap = wrap
}

// N implements Transport.
func (t *Mem) N() int { return t.n }

// checkEnds validates a (src, dst) pair against the live set. It
// reports the first problem: closed transport, out-of-range index, or
// a dead endpoint.
func (t *Mem) checkEnds(src, dst int) error {
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src == dst {
		return fmt.Errorf("exec: invalid link %d→%d for %d nodes", src, dst, t.n)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrTransportClosed
	}
	if t.dead[src] {
		return &PeerDeadError{Node: src}
	}
	if t.dead[dst] {
		return &PeerDeadError{Node: dst}
	}
	return nil
}

// Dial implements Transport.
func (t *Mem) Dial(src, dst int) (net.Conn, error) {
	if err := t.checkEnds(src, dst); err != nil {
		return nil, err
	}
	client, server := net.Pipe()
	t.mu.Lock()
	wrap, pairWrap := t.wrap, t.pairWrap
	t.mu.Unlock()
	wrapped := server
	if wrap != nil {
		wrapped = wrap(server)
	}
	if pairWrap != nil {
		wrapped = pairWrap(src, dst, wrapped)
	}
	// Hand the server half to the destination's accept stream. The
	// selects keep a dial from blocking forever against a node that
	// died or a transport that closed while we were waiting.
	select {
	case t.inbox[dst] <- wrapped:
	case <-t.killed[dst]:
		closeBoth(client, wrapped)
		return nil, &PeerDeadError{Node: dst}
	case <-t.killed[src]:
		closeBoth(client, wrapped)
		return nil, &PeerDeadError{Node: src}
	case <-t.done:
		closeBoth(client, wrapped)
		return nil, ErrTransportClosed
	}
	t.register(src, client)
	t.register(dst, wrapped)
	return client, nil
}

// closeBoth tears down an unplaced pipe pair; pipe close errors carry
// no information.
func closeBoth(a, b net.Conn) {
	severAll([]net.Conn{a, b})
}

// register tracks a connection under its node for kill/close teardown.
// If the node died between placement and registration, the connection
// is severed immediately.
func (t *Mem) register(node int, c net.Conn) {
	t.mu.Lock()
	deadNow := t.dead[node] || t.closed
	if !deadNow {
		t.conns[node] = append(t.conns[node], c)
	}
	t.mu.Unlock()
	if deadNow {
		severAll([]net.Conn{c})
	}
}

// Accept implements Transport.
func (t *Mem) Accept(node int) (net.Conn, error) {
	if node < 0 || node >= t.n {
		return nil, fmt.Errorf("exec: invalid node %d for %d nodes", node, t.n)
	}
	select {
	case c := <-t.inbox[node]:
		return c, nil
	case <-t.killed[node]:
		return nil, &PeerDeadError{Node: node}
	case <-t.done:
		return nil, ErrTransportClosed
	}
}

// Kill implements Transport: it marks the node dead, wakes its accept
// loop, and severs its open connections. Connection teardown happens
// outside the mutex (the lock-free-teardown convention from the
// directory layer).
func (t *Mem) Kill(node int) {
	if node < 0 || node >= t.n {
		return
	}
	t.mu.Lock()
	if t.dead[node] {
		t.mu.Unlock()
		return
	}
	t.dead[node] = true
	doomed := t.conns[node]
	t.conns[node] = nil
	t.mu.Unlock()
	close(t.killed[node])
	severAll(doomed)
}

// severAll closes a batch of connections. The close error of a
// connection being deliberately destroyed carries no information, so
// it is the one error this package discards.
func severAll(conns []net.Conn) {
	for _, c := range conns {
		//hetvet:ignore errdiscard teardown of a connection being deliberately destroyed; there is no caller to inform
		c.Close()
	}
}

// Close implements Transport.
func (t *Mem) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	var doomed []net.Conn
	for node := 0; node < t.n; node++ {
		doomed = append(doomed, t.conns[node]...)
		t.conns[node] = nil
	}
	t.mu.Unlock()
	close(t.done)
	severAll(doomed)
	return nil
}
