package exec

import (
	"context"
	"testing"

	"hetsched/internal/leakcheck"
)

// runExchange performs one full exchange over tr and closes it; the
// surrounding leakcheck.Check verifies the executor joined every
// per-node sender goroutine and the transport teardown left nothing
// behind.
func runExchange(t *testing.T, tr Transport, ctx context.Context, wantErr bool) {
	t.Helper()
	res, m, sizes := testProblem(t, tr.N())
	s := newSink(t)
	cfg := fastCfg()
	cfg.Deliver = s.deliver
	ex, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ex.Run(ctx, res, m, sizes)
	if err != nil && !wantErr {
		t.Errorf("run: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestExecMemLeaksNoGoroutines is the runtime counterpart of the
// static goleak check on this package, over the in-process transport.
func TestExecMemLeaksNoGoroutines(t *testing.T) {
	leakcheck.Check(t, func() {
		tr, err := NewMem(5)
		if err != nil {
			t.Fatal(err)
		}
		runExchange(t, tr, context.Background(), false)
	})
}

// TestExecTCPLeaksNoGoroutines runs the same exchange over real
// loopback sockets, where leaked goroutines would pin listeners and
// connections too.
func TestExecTCPLeaksNoGoroutines(t *testing.T) {
	leakcheck.Check(t, func() {
		tr, err := NewTCP(4)
		if err != nil {
			t.Fatal(err)
		}
		runExchange(t, tr, context.Background(), false)
	})
}

// TestExecCancelledRunLeaksNoGoroutines cancels the context before the
// run starts: Run must still join its senders on the error path.
func TestExecCancelledRunLeaksNoGoroutines(t *testing.T) {
	leakcheck.Check(t, func() {
		tr, err := NewMem(4)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		runExchange(t, tr, ctx, true)
	})
}
