package exec

import (
	"fmt"
	"net"
	"sync"
)

// TCP is the socket transport: every node owns a real loopback
// listener, and Dial opens a fresh TCP connection per transfer
// attempt. It exists so the executor's framing, deadlines, and retry
// ladder are exercised against a kernel network stack, not just
// in-process pipes; hcsim -execute -transport tcp runs a whole
// exchange over it. An optional connection wrapper is applied to the
// accept-side half of every connection — the same chaos seam as
// directory.Server.SetConnWrapper.
type TCP struct {
	n    int
	ls   []net.Listener
	addr []string

	mu     sync.Mutex // guards dead, conns, closed, wrap — never held across I/O
	wrap   func(net.Conn) net.Conn
	dead   []bool
	conns  [][]net.Conn
	closed bool
}

// NewTCP creates a loopback TCP transport for n nodes, binding one
// ephemeral listener per node.
//
//hetvet:ignore tracectx construction-time listeners outlive any request; no trace exists yet
func NewTCP(n int) (*TCP, error) {
	if n < 0 {
		return nil, fmt.Errorf("exec: negative node count %d", n)
	}
	t := &TCP{
		n:     n,
		ls:    make([]net.Listener, n),
		addr:  make([]string, n),
		dead:  make([]bool, n),
		conns: make([][]net.Conn, n),
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeListeners(t.ls[:i])
			return nil, fmt.Errorf("exec: listen for node %d: %w", i, err)
		}
		t.ls[i] = l
		t.addr[i] = l.Addr().String()
	}
	return t, nil
}

// closeListeners tears down already-bound listeners after a partial
// construction failure.
func closeListeners(ls []net.Listener) {
	for _, l := range ls {
		if l == nil {
			continue
		}
		//hetvet:ignore errdiscard teardown after a construction failure already being reported
		l.Close()
	}
}

// SetConnWrapper installs a wrapper applied to the accept-side half of
// every future connection — the fault-injection seam. Call before the
// executor starts; nil restores the identity wrapper.
func (t *TCP) SetConnWrapper(wrap func(net.Conn) net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wrap = wrap
}

// N implements Transport.
func (t *TCP) N() int { return t.n }

// Addr returns the listen address of one node, for out-of-process
// peers and diagnostics.
func (t *TCP) Addr(node int) string { return t.addr[node] }

// Dial implements Transport.
//
//hetvet:ignore tracectx the Transport interface is trace-neutral; per-transfer spans live in the run, which owns the ctx
func (t *TCP) Dial(src, dst int) (net.Conn, error) {
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src == dst {
		return nil, fmt.Errorf("exec: invalid link %d→%d for %d nodes", src, dst, t.n)
	}
	t.mu.Lock()
	closed, srcDead, dstDead := t.closed, t.dead[src], t.dead[dst]
	t.mu.Unlock()
	switch {
	case closed:
		return nil, ErrTransportClosed
	case srcDead:
		return nil, &PeerDeadError{Node: src}
	case dstDead:
		// The listener is already down; fail fast with the
		// classification a refused dial would eventually earn.
		return nil, &PeerDeadError{Node: dst}
	}
	c, err := net.Dial("tcp", t.addr[dst])
	if err != nil {
		return nil, fmt.Errorf("exec: dial %d→%d: %w", src, dst, err)
	}
	t.track(src, c)
	return c, nil
}

// Accept implements Transport.
func (t *TCP) Accept(node int) (net.Conn, error) {
	if node < 0 || node >= t.n {
		return nil, fmt.Errorf("exec: invalid node %d for %d nodes", node, t.n)
	}
	c, err := t.ls[node].Accept()
	if err != nil {
		t.mu.Lock()
		closed, dead := t.closed, t.dead[node]
		t.mu.Unlock()
		switch {
		case dead:
			return nil, &PeerDeadError{Node: node}
		case closed:
			return nil, ErrTransportClosed
		}
		return nil, fmt.Errorf("exec: accept at node %d: %w", node, err)
	}
	t.mu.Lock()
	wrap := t.wrap
	t.mu.Unlock()
	if wrap != nil {
		c = wrap(c)
	}
	t.track(node, c)
	return c, nil
}

// track registers a connection under its node for kill/close teardown,
// severing it immediately when the node died mid-handshake.
func (t *TCP) track(node int, c net.Conn) {
	t.mu.Lock()
	deadNow := t.dead[node] || t.closed
	if !deadNow {
		t.conns[node] = append(t.conns[node], c)
	}
	t.mu.Unlock()
	if deadNow {
		severAll([]net.Conn{c})
	}
}

// Kill implements Transport: the node's listener goes down and its
// open connections are severed, so in-flight transfers fail and later
// dials are refused. Teardown happens outside the mutex.
func (t *TCP) Kill(node int) {
	if node < 0 || node >= t.n {
		return
	}
	t.mu.Lock()
	if t.dead[node] {
		t.mu.Unlock()
		return
	}
	t.dead[node] = true
	doomed := t.conns[node]
	t.conns[node] = nil
	t.mu.Unlock()
	//hetvet:ignore errdiscard chaos kill: closing the listener IS the injected fault
	t.ls[node].Close()
	severAll(doomed)
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	var doomed []net.Conn
	for node := 0; node < t.n; node++ {
		doomed = append(doomed, t.conns[node]...)
		t.conns[node] = nil
	}
	dead := append([]bool(nil), t.dead...)
	t.mu.Unlock()
	for node, l := range t.ls {
		if dead[node] {
			continue // Kill already closed it
		}
		//hetvet:ignore errdiscard idempotent transport teardown; the listener is gone either way
		l.Close()
	}
	severAll(doomed)
	return nil
}
