package exec

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestExecReportGolden locks the DeliveryReport rendering: operators
// grep these lines and EXPERIMENTS.md quotes them, so layout changes
// must be deliberate.
func TestExecReportGolden(t *testing.T) {
	rep := &DeliveryReport{
		N: 4, Rounds: 2, Replans: 1, Dead: []int{2},
		TotalBytes: 1200, DeliveredBytes: 700, ReroutedBytes: 200, AbandonedBytes: 300,
		RetriedBytes: 100, Retries: 3, DupSuppressed: 1,
		Modeled: 0.4439, Wall: 2063 * time.Microsecond,
		Dests: []DestReport{
			{Dst: 0, Delivered: 300, Transfers: 3},
			{Dst: 1, Delivered: 200, Rerouted: 200, Transfers: 3, Retries: 2},
			{Dst: 2, Delivered: 100, Abandoned: 200, Transfers: 3, Retries: 1,
				Reasons: []string{"P2 dead: transport: exec: peer P2 dead"}},
			{Dst: 3, Delivered: 100, Abandoned: 100, Transfers: 3,
				Reasons: []string{"sender P2 dead: transport: exec: peer P2 dead"}},
		},
	}
	want := `delivery report: P=4, 2 round(s), 1 replan(s), dead: P2
  bytes: 1200 total = 700 delivered + 200 rerouted + 300 abandoned (100 retried, 3 retries, 1 dup suppressed)
  time: 0.002063 s measured vs 0.4439 s modeled t_max (ratio 0.00465)
  dst    delivered   rerouted  abandoned  retries  reasons
  P0           300          0          0        0
  P1           200        200          0        2
  P2           100          0        200        1  P2 dead: transport: exec: peer P2 dead
  P3           100          0        100        0  sender P2 dead: transport: exec: peer P2 dead
`
	if got := rep.String(); got != want {
		t.Fatalf("rendering drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !rep.Accounted() {
		t.Fatal("golden report does not partition its bytes")
	}
	if r := rep.Ratio(); r < 0.00464 || r > 0.00466 {
		t.Fatalf("ratio %g outside expected window", r)
	}
}

func TestExecReportNoDeadRendersNone(t *testing.T) {
	rep := &DeliveryReport{N: 2, Rounds: 1}
	got := rep.String()
	want := "delivery report: P=2, 1 round(s), 0 replan(s), dead: none\n"
	if got[:len(want)] != want {
		t.Fatalf("header drifted: %q", got)
	}
}

func TestExecReportRatioZeroModel(t *testing.T) {
	rep := &DeliveryReport{Wall: time.Second}
	if !math.IsNaN(rep.Ratio()) {
		t.Fatalf("zero-model ratio must be NaN (undefined), got %g", rep.Ratio())
	}
	if !strings.Contains(rep.String(), "(ratio n/a)") {
		t.Fatalf("zero-model report must render ratio as n/a:\n%s", rep.String())
	}
}
