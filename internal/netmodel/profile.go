package netmodel

import (
	"fmt"
	"math"
)

// Load profiles: deterministic, time-of-day-style bandwidth variation
// for adaptivity experiments. Where Walker models jittery short-term
// load as a random walk, a Profile models the slow, predictable
// component — the diurnal swell of shared-network traffic the paper's
// metacomputing environment would see — as a smooth multiplicative
// curve per pair. Sampling a profile over a horizon yields the
// piecewise epochs the simulator consumes.

// Profile maps a time to a bandwidth multiplier for one ordered pair.
// Multipliers must be positive.
type Profile func(src, dst int, t float64) float64

// FlatProfile is the identity: no variation.
func FlatProfile(int, int, float64) float64 { return 1 }

// DiurnalProfile returns a sinusoidal day/night load curve: bandwidth
// swings between (1-depth) and (1+depth) of its base value with the
// given period, phase-shifted per source site so that sites peak at
// different times (phases spread evenly over the period).
func DiurnalProfile(n int, period, depth float64) (Profile, error) {
	if period <= 0 {
		return nil, fmt.Errorf("netmodel: non-positive period %g", period)
	}
	if depth < 0 || depth >= 1 {
		return nil, fmt.Errorf("netmodel: depth %g outside [0,1)", depth)
	}
	if n <= 0 {
		return nil, fmt.Errorf("netmodel: non-positive size %d", n)
	}
	return func(src, _ int, t float64) float64 {
		phase := 2 * math.Pi * float64(src) / float64(n)
		return 1 + depth*math.Sin(2*math.Pi*t/period+phase)
	}, nil
}

// SampleProfile applies the profile to a base table at a single time.
func SampleProfile(base *Perf, p Profile, t float64) *Perf {
	out := base.Clone()
	n := base.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pp := out.At(i, j)
			pp.Bandwidth = base.At(i, j).Bandwidth * p(i, j, t)
			out.Set(i, j, pp)
		}
	}
	return out
}

// ProfileSeries samples the profile at the given times, producing one
// table per sample — ready to become simulator epochs. Times must be
// strictly increasing.
func ProfileSeries(base *Perf, p Profile, times []float64) ([]*Perf, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("netmodel: no sample times")
	}
	out := make([]*Perf, 0, len(times))
	for k, t := range times {
		if k > 0 && t <= times[k-1] {
			return nil, fmt.Errorf("netmodel: sample times not increasing at index %d", k)
		}
		sampled := SampleProfile(base, p, t)
		if err := sampled.Validate(); err != nil {
			return nil, fmt.Errorf("netmodel: profile produced invalid table at t=%g: %w", t, err)
		}
		out = append(out, sampled)
	}
	return out, nil
}
