// Package netmodel provides the heterogeneous network substrate used by
// the scheduling framework: end-to-end pairwise performance tables,
// site/link topologies with routed paths and shared-link bandwidth
// division, the GUSTO testbed data from the paper (Tables 1 and 2), and
// reproducible random generators guided by that data.
//
// The package deliberately models the network at the level visible to an
// application in a metacomputing system: each ordered processor pair
// (i, j) has a start-up latency and an effective data transmission
// bandwidth. Topology, routing and flow control are hidden behind those
// two numbers, exactly as in the paper's communication model.
//
// Units are SI throughout: seconds for latency, bytes/second for
// bandwidth. Helpers convert from the paper's milliseconds and kbit/s.
package netmodel

import (
	"errors"
	"fmt"
	"math"
)

// PairPerf is the end-to-end network performance between one ordered
// pair of processors: a start-up latency in seconds and a sustained
// transmission bandwidth in bytes per second.
type PairPerf struct {
	Latency   float64 // seconds of fixed per-message start-up cost
	Bandwidth float64 // bytes per second of sustained transfer rate
}

// TransferTime returns the modelled time in seconds to move a message of
// size bytes across this pair: Latency + size/Bandwidth. A non-positive
// bandwidth yields +Inf for a non-empty message.
func (p PairPerf) TransferTime(size int64) float64 {
	if size <= 0 {
		return p.Latency
	}
	if p.Bandwidth <= 0 {
		return math.Inf(1)
	}
	return p.Latency + float64(size)/p.Bandwidth
}

// Valid reports whether the pair performance is physically meaningful:
// finite non-negative latency and finite positive bandwidth.
func (p PairPerf) Valid() bool { return p.Check() == nil }

// ErrPerfBounds marks a pair-performance value rejected by bounds
// validation at a trust boundary. Test with errors.Is.
var ErrPerfBounds = errors.New("netmodel: performance out of bounds")

// Check is Valid with a diagnosis: nil for a physically meaningful
// pair, otherwise an error wrapping ErrPerfBounds that names the first
// violated bound. Trust boundaries that accept measured performance
// from elsewhere — the directory's calibration feed, a client
// validating a snapshot it did not produce — use Check so a rejected
// value says why it was rejected instead of silently vanishing.
func (p PairPerf) Check() error {
	switch {
	case math.IsNaN(p.Latency) || math.IsInf(p.Latency, 0):
		return fmt.Errorf("%w: non-finite latency %v", ErrPerfBounds, p.Latency)
	case p.Latency < 0:
		return fmt.Errorf("%w: negative latency %v", ErrPerfBounds, p.Latency)
	case math.IsNaN(p.Bandwidth) || math.IsInf(p.Bandwidth, 0):
		return fmt.Errorf("%w: non-finite bandwidth %v", ErrPerfBounds, p.Bandwidth)
	case p.Bandwidth <= 0:
		return fmt.Errorf("%w: non-positive bandwidth %v", ErrPerfBounds, p.Bandwidth)
	}
	return nil
}

// Perf is a dense table of pairwise network performance for an N
// processor system. The diagonal describes a processor talking to
// itself and is conventionally ignored by schedulers (local copies are
// free in the paper's model), but it is kept addressable so tables can
// round-trip through encoders unchanged.
type Perf struct {
	n     int
	pairs []PairPerf // row-major n×n
}

// NewPerf returns an n×n performance table with all entries zero.
//
//hetvet:coldpath constructor; tables are built at snapshot or degraded-cache time, not per plan
func NewPerf(n int) *Perf {
	if n < 0 {
		panic(fmt.Sprintf("netmodel: negative size %d", n))
	}
	return &Perf{n: n, pairs: make([]PairPerf, n*n)}
}

// N returns the number of processors the table covers.
func (p *Perf) N() int { return p.n }

// At returns the performance from processor i to processor j.
func (p *Perf) At(i, j int) PairPerf { return p.pairs[i*p.n+j] }

// Set records the performance from processor i to processor j.
func (p *Perf) Set(i, j int, pp PairPerf) { p.pairs[i*p.n+j] = pp }

// Clone returns a deep copy of the table.
func (p *Perf) Clone() *Perf {
	c := NewPerf(p.n)
	copy(c.pairs, p.pairs)
	return c
}

// Validate checks that every off-diagonal entry is physically
// meaningful. It returns an error naming the first offending pair.
func (p *Perf) Validate() error {
	for i := 0; i < p.n; i++ {
		for j := 0; j < p.n; j++ {
			if i == j {
				continue
			}
			if err := p.At(i, j).Check(); err != nil {
				return fmt.Errorf("netmodel: invalid performance %+v for pair (%d,%d): %w", p.At(i, j), i, j, err)
			}
		}
	}
	return nil
}

// Equal reports whether two tables have the same size and identical
// entries (by float64 equality, so a table containing NaN never equals
// anything). Callers use Equal to skip cloning or rebuilding when a
// measurement provably has not changed, so "unsure" must read as
// "not equal".
func (p *Perf) Equal(o *Perf) bool {
	if o == nil || p.n != o.n {
		return false
	}
	for k := range p.pairs {
		if p.pairs[k] != o.pairs[k] {
			return false
		}
	}
	return true
}

// Symmetric reports whether the table is symmetric (perf i→j equals
// perf j→i for every pair), as the paper's GUSTO tables are.
func (p *Perf) Symmetric() bool {
	for i := 0; i < p.n; i++ {
		for j := i + 1; j < p.n; j++ {
			if p.At(i, j) != p.At(j, i) {
				return false
			}
		}
	}
	return true
}

// TransferTime returns the modelled time to send a message of size
// bytes from processor i to processor j. Sending to self is free, per
// the paper's convention that local memory copies are negligible.
func (p *Perf) TransferTime(i, j int, size int64) float64 {
	if i == j {
		return 0
	}
	return p.At(i, j).TransferTime(size)
}

// Scale returns a copy of the table with every bandwidth multiplied by
// factor. Latencies are unchanged. It panics if factor is not positive.
func (p *Perf) Scale(factor float64) *Perf {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("netmodel: invalid scale factor %v", factor))
	}
	c := p.Clone()
	for k := range c.pairs {
		c.pairs[k].Bandwidth *= factor
	}
	return c
}

// ErrSizeMismatch is returned when two tables of different sizes are
// combined.
var ErrSizeMismatch = errors.New("netmodel: performance tables have different sizes")

// MsToSeconds converts a latency in milliseconds (the unit of the
// paper's Table 1) to seconds.
func MsToSeconds(ms float64) float64 { return ms / 1e3 }

// KbpsToBytesPerSecond converts a bandwidth in kilobits per second (the
// unit of the paper's Table 2) to bytes per second.
func KbpsToBytesPerSecond(kbps float64) float64 { return kbps * 1000 / 8 }

// SecondsToMs converts seconds to milliseconds.
func SecondsToMs(s float64) float64 { return s * 1e3 }

// BytesPerSecondToKbps converts bytes per second to kilobits per second.
func BytesPerSecondToKbps(bps float64) float64 { return bps * 8 / 1000 }
