package netmodel

import (
	"encoding/json"
	"fmt"
)

// JSON serialization for performance tables, used to save and restore
// directory state and to feed the simulator CLI. The shape matches the
// directory wire protocol's snapshot response:
//
//	{"n":5,"names":["AMES",...],"latency":[[...]],"bandwidth":[[...]]}
//
// Units are SI (seconds, bytes/second).

// perfJSON is the stable on-disk shape.
type perfJSON struct {
	N         int         `json:"n"`
	Names     []string    `json:"names,omitempty"`
	Latency   [][]float64 `json:"latency"`
	Bandwidth [][]float64 `json:"bandwidth"`
}

// MarshalPerf encodes a table (and optional processor names) as JSON.
func MarshalPerf(p *Perf, names []string) ([]byte, error) {
	if p == nil {
		return nil, fmt.Errorf("netmodel: nil table")
	}
	if names != nil && len(names) != p.N() {
		return nil, fmt.Errorf("netmodel: %d names for %d processors", len(names), p.N())
	}
	out := perfJSON{N: p.N(), Names: names}
	out.Latency = make([][]float64, p.N())
	out.Bandwidth = make([][]float64, p.N())
	for i := 0; i < p.N(); i++ {
		out.Latency[i] = make([]float64, p.N())
		out.Bandwidth[i] = make([]float64, p.N())
		for j := 0; j < p.N(); j++ {
			pp := p.At(i, j)
			out.Latency[i][j] = pp.Latency
			out.Bandwidth[i][j] = pp.Bandwidth
		}
	}
	return json.MarshalIndent(out, "", " ")
}

// UnmarshalPerf decodes a table written by MarshalPerf, validating
// shape and entries.
func UnmarshalPerf(data []byte) (*Perf, []string, error) {
	var in perfJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, nil, fmt.Errorf("netmodel: decode: %w", err)
	}
	if in.N < 0 {
		return nil, nil, fmt.Errorf("netmodel: negative size %d", in.N)
	}
	if len(in.Latency) != in.N || len(in.Bandwidth) != in.N {
		return nil, nil, fmt.Errorf("netmodel: tables are %d×? and %d×?, want %d", len(in.Latency), len(in.Bandwidth), in.N)
	}
	if in.Names != nil && len(in.Names) != in.N {
		return nil, nil, fmt.Errorf("netmodel: %d names for %d processors", len(in.Names), in.N)
	}
	p := NewPerf(in.N)
	for i := 0; i < in.N; i++ {
		if len(in.Latency[i]) != in.N || len(in.Bandwidth[i]) != in.N {
			return nil, nil, fmt.Errorf("netmodel: ragged row %d", i)
		}
		for j := 0; j < in.N; j++ {
			p.Set(i, j, PairPerf{Latency: in.Latency[i][j], Bandwidth: in.Bandwidth[i][j]})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, in.Names, nil
}
