package netmodel

// GUSTO testbed data, reproduced from Tables 1 and 2 of the paper.
// GUSTO was the Globus testbed; the directory service reported current
// end-to-end latency and bandwidth between computing sites. The paper
// uses these measurements to calibrate its random problem generator,
// and so do we.

// GustoSites names the five GUSTO sites of Tables 1 and 2, in table
// order: NASA AMES, Argonne National Lab, University of Indiana,
// USC-ISI, and NCSA.
var GustoSites = []string{"AMES", "ANL", "IND", "USC-ISI", "NCSA"}

// gustoLatencyMS is Table 1: pairwise latency in milliseconds.
// The diagonal is zero (a site talking to itself).
var gustoLatencyMS = [5][5]float64{
	{0, 34.5, 89.5, 12, 42},
	{34.5, 0, 20, 26.5, 4.5},
	{89.5, 20, 0, 42.5, 21.5},
	{12, 26.5, 42.5, 0, 29.5},
	{42, 4.5, 21.5, 29.5, 0},
}

// gustoBandwidthKbps is Table 2: pairwise bandwidth in kbit/s.
var gustoBandwidthKbps = [5][5]float64{
	{0, 512, 246, 2044, 391},
	{512, 0, 491, 693, 2402},
	{246, 491, 0, 311, 448},
	{2044, 693, 311, 0, 4976},
	{391, 2402, 448, 4976, 0},
}

// Gusto returns the 5-site GUSTO performance table of Tables 1 and 2,
// converted to SI units (seconds, bytes/second). Diagonal entries are
// zero-latency with an effectively infinite local bandwidth, matching
// the paper's convention that local copies are free.
func Gusto() *Perf {
	p := NewPerf(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				p.Set(i, j, PairPerf{Latency: 0, Bandwidth: localBandwidth})
				continue
			}
			p.Set(i, j, PairPerf{
				Latency:   MsToSeconds(gustoLatencyMS[i][j]),
				Bandwidth: KbpsToBytesPerSecond(gustoBandwidthKbps[i][j]),
			})
		}
	}
	return p
}

// localBandwidth stands in for the bandwidth of a local memory copy.
// Any value large enough to make local transfers negligible works; the
// schedulers never look at diagonal entries.
const localBandwidth = 1e12

// GustoLatencyMS returns Table 1 entry (i, j) in the paper's original
// milliseconds.
func GustoLatencyMS(i, j int) float64 { return gustoLatencyMS[i][j] }

// GustoBandwidthKbps returns Table 2 entry (i, j) in the paper's
// original kbit/s.
func GustoBandwidthKbps(i, j int) float64 { return gustoBandwidthKbps[i][j] }

// GustoRanges returns the extremes observed in the GUSTO tables, which
// the paper uses as a guideline for its random problem generator:
// latency 4.5–89.5 ms and bandwidth 246–4976 kbit/s, in SI units.
func GustoRanges() (minLat, maxLat, minBW, maxBW float64) {
	first := true
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			lat := MsToSeconds(gustoLatencyMS[i][j])
			bw := KbpsToBytesPerSecond(gustoBandwidthKbps[i][j])
			if first {
				minLat, maxLat, minBW, maxBW = lat, lat, bw, bw
				first = false
				continue
			}
			if lat < minLat {
				minLat = lat
			}
			if lat > maxLat {
				maxLat = lat
			}
			if bw < minBW {
				minBW = bw
			}
			if bw > maxBW {
				maxBW = bw
			}
		}
	}
	return minLat, maxLat, minBW, maxBW
}
