package netmodel

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPairPerfTransferTime(t *testing.T) {
	pp := PairPerf{Latency: 0.010, Bandwidth: 1000}
	got := pp.TransferTime(500)
	want := 0.010 + 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TransferTime(500) = %g, want %g", got, want)
	}
}

func TestPairPerfTransferTimeZeroSize(t *testing.T) {
	pp := PairPerf{Latency: 0.010, Bandwidth: 1000}
	if got := pp.TransferTime(0); got != 0.010 {
		t.Errorf("TransferTime(0) = %g, want latency only", got)
	}
	if got := pp.TransferTime(-5); got != 0.010 {
		t.Errorf("TransferTime(-5) = %g, want latency only", got)
	}
}

func TestPairPerfTransferTimeZeroBandwidth(t *testing.T) {
	pp := PairPerf{Latency: 0.010, Bandwidth: 0}
	if got := pp.TransferTime(1); !math.IsInf(got, 1) {
		t.Errorf("TransferTime with zero bandwidth = %g, want +Inf", got)
	}
}

func TestPairPerfValid(t *testing.T) {
	cases := []struct {
		pp   PairPerf
		want bool
	}{
		{PairPerf{0.01, 1000}, true},
		{PairPerf{0, 1}, true},
		{PairPerf{-0.01, 1000}, false},
		{PairPerf{0.01, 0}, false},
		{PairPerf{0.01, -5}, false},
		{PairPerf{math.Inf(1), 1000}, false},
		{PairPerf{0.01, math.Inf(1)}, false},
		{PairPerf{math.NaN(), 1000}, false},
		{PairPerf{0.01, math.NaN()}, false},
	}
	for _, c := range cases {
		if got := c.pp.Valid(); got != c.want {
			t.Errorf("Valid(%+v) = %v, want %v", c.pp, got, c.want)
		}
	}
}

func TestPairPerfCheck(t *testing.T) {
	cases := []struct {
		pp   PairPerf
		want string // substring of the diagnosis; empty means nil error
	}{
		{PairPerf{0.01, 1000}, ""},
		{PairPerf{0, 1}, ""},
		{PairPerf{-0.01, 1000}, "negative latency"},
		{PairPerf{math.Inf(1), 1000}, "non-finite latency"},
		{PairPerf{math.NaN(), 1000}, "non-finite latency"},
		{PairPerf{0.01, 0}, "non-positive bandwidth"},
		{PairPerf{0.01, -5}, "non-positive bandwidth"},
		{PairPerf{0.01, math.Inf(1)}, "non-finite bandwidth"},
		{PairPerf{0.01, math.NaN()}, "non-finite bandwidth"},
	}
	for _, c := range cases {
		err := c.pp.Check()
		if c.want == "" {
			if err != nil {
				t.Errorf("Check(%+v) = %v, want nil", c.pp, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Check(%+v) accepted, want %q", c.pp, c.want)
			continue
		}
		if !errors.Is(err, ErrPerfBounds) {
			t.Errorf("Check(%+v) error does not wrap ErrPerfBounds: %v", c.pp, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Check(%+v) = %q, want diagnosis %q", c.pp, err, c.want)
		}
		// Valid and Check must agree by construction.
		if c.pp.Valid() {
			t.Errorf("Valid(%+v) true but Check rejects", c.pp)
		}
	}
}

func TestPerfValidateWrapsBounds(t *testing.T) {
	p := NewPerf(2)
	p.Set(0, 1, PairPerf{Latency: 0.01, Bandwidth: 1000})
	p.Set(1, 0, PairPerf{Latency: 0.01, Bandwidth: -1})
	err := p.Validate()
	if err == nil {
		t.Fatal("invalid table accepted")
	}
	if !errors.Is(err, ErrPerfBounds) {
		t.Fatalf("Validate error does not wrap ErrPerfBounds: %v", err)
	}
	if !strings.Contains(err.Error(), "(1,0)") {
		t.Fatalf("Validate error does not name the offending pair: %v", err)
	}
}

func TestPerfSetAtClone(t *testing.T) {
	p := NewPerf(3)
	pp := PairPerf{Latency: 0.005, Bandwidth: 2000}
	p.Set(1, 2, pp)
	if got := p.At(1, 2); got != pp {
		t.Fatalf("At(1,2) = %+v, want %+v", got, pp)
	}
	c := p.Clone()
	c.Set(1, 2, PairPerf{Latency: 1, Bandwidth: 1})
	if p.At(1, 2) != pp {
		t.Error("Clone is not independent of the original")
	}
}

func TestPerfValidate(t *testing.T) {
	p := NewPerf(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				p.Set(i, j, PairPerf{Latency: 0.01, Bandwidth: 100})
			}
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate on valid table: %v", err)
	}
	p.Set(0, 2, PairPerf{Latency: -1, Bandwidth: 100})
	if err := p.Validate(); err == nil {
		t.Error("Validate did not flag a negative latency")
	}
}

func TestPerfTransferTimeSelf(t *testing.T) {
	p := Gusto()
	if got := p.TransferTime(2, 2, 1<<20); got != 0 {
		t.Errorf("self transfer = %g, want 0", got)
	}
}

func TestPerfScale(t *testing.T) {
	p := Gusto()
	s := p.Scale(2)
	if got, want := s.At(0, 1).Bandwidth, p.At(0, 1).Bandwidth*2; math.Abs(got-want) > 1e-9 {
		t.Errorf("scaled bandwidth = %g, want %g", got, want)
	}
	if got, want := s.At(0, 1).Latency, p.At(0, 1).Latency; got != want {
		t.Errorf("scale changed latency: %g != %g", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) did not panic")
		}
	}()
	p.Scale(0)
}

func TestGustoMatchesTables(t *testing.T) {
	p := Gusto()
	if p.N() != 5 {
		t.Fatalf("Gusto size = %d, want 5", p.N())
	}
	// Spot-check against the published tables: AMES↔USC-ISI is 12 ms
	// and 2044 kbit/s; ANL↔NCSA is 4.5 ms and 2402 kbit/s.
	checks := []struct {
		i, j     int
		ms, kbps float64
	}{
		{0, 3, 12, 2044},
		{1, 4, 4.5, 2402},
		{2, 0, 89.5, 246},
		{3, 4, 29.5, 4976},
	}
	for _, c := range checks {
		pp := p.At(c.i, c.j)
		if got := SecondsToMs(pp.Latency); math.Abs(got-c.ms) > 1e-9 {
			t.Errorf("latency(%d,%d) = %g ms, want %g", c.i, c.j, got, c.ms)
		}
		if got := BytesPerSecondToKbps(pp.Bandwidth); math.Abs(got-c.kbps) > 1e-9 {
			t.Errorf("bandwidth(%d,%d) = %g kbps, want %g", c.i, c.j, got, c.kbps)
		}
	}
}

func TestGustoSymmetricAndValid(t *testing.T) {
	p := Gusto()
	if !p.Symmetric() {
		t.Error("GUSTO tables should be symmetric")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("GUSTO table invalid: %v", err)
	}
}

func TestGustoRanges(t *testing.T) {
	minLat, maxLat, minBW, maxBW := GustoRanges()
	if got := SecondsToMs(minLat); got != 4.5 {
		t.Errorf("min latency = %g ms, want 4.5", got)
	}
	if got := SecondsToMs(maxLat); got != 89.5 {
		t.Errorf("max latency = %g ms, want 89.5", got)
	}
	if got := BytesPerSecondToKbps(minBW); math.Abs(got-246) > 1e-9 {
		t.Errorf("min bandwidth = %g kbps, want 246", got)
	}
	if got := BytesPerSecondToKbps(maxBW); math.Abs(got-4976) > 1e-9 {
		t.Errorf("max bandwidth = %g kbps, want 4976", got)
	}
}

func TestGustoAccessors(t *testing.T) {
	if GustoLatencyMS(0, 2) != 89.5 {
		t.Error("GustoLatencyMS(0,2) != 89.5")
	}
	if GustoBandwidthKbps(3, 4) != 4976 {
		t.Error("GustoBandwidthKbps(3,4) != 4976")
	}
	if len(GustoSites) != 5 {
		t.Error("GustoSites should list 5 sites")
	}
}

func TestUnitConversionsRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		x = math.Abs(x)
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return true
		}
		a := SecondsToMs(MsToSeconds(x))
		b := BytesPerSecondToKbps(KbpsToBytesPerSecond(x))
		return floatClose(a, x) && floatClose(b, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func TestRandomPerfWithinRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := GustoGuided()
	p := RandomPerf(rng, 20, cfg)
	if err := p.Validate(); err != nil {
		t.Fatalf("random table invalid: %v", err)
	}
	for i := 0; i < p.N(); i++ {
		for j := 0; j < p.N(); j++ {
			if i == j {
				continue
			}
			pp := p.At(i, j)
			if pp.Latency < cfg.MinLatency || pp.Latency > cfg.MaxLatency {
				t.Fatalf("latency %g outside [%g, %g]", pp.Latency, cfg.MinLatency, cfg.MaxLatency)
			}
			if pp.Bandwidth < cfg.MinBandwidth || pp.Bandwidth > cfg.MaxBandwidth {
				t.Fatalf("bandwidth %g outside [%g, %g]", pp.Bandwidth, cfg.MinBandwidth, cfg.MaxBandwidth)
			}
		}
	}
}

func TestRandomPerfSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := RandomPerf(rng, 12, GustoGuided())
	if !p.Symmetric() {
		t.Error("GustoGuided generation should be symmetric")
	}
	cfg := GustoGuided()
	cfg.Symmetric = false
	q := RandomPerf(rand.New(rand.NewSource(2)), 12, cfg)
	if q.Symmetric() {
		t.Error("asymmetric generation produced a symmetric table (vanishingly unlikely)")
	}
}

func TestRandomPerfDeterministic(t *testing.T) {
	a := RandomPerf(rand.New(rand.NewSource(7)), 10, GustoGuided())
	b := RandomPerf(rand.New(rand.NewSource(7)), 10, GustoGuided())
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("same seed produced different tables at (%d,%d)", i, j)
			}
		}
	}
}

func TestRandomPerfBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RandomPerf with zero bandwidth range did not panic")
		}
	}()
	RandomPerf(rand.New(rand.NewSource(1)), 4, GenConfig{MinLatency: 0, MaxLatency: 1, MinBandwidth: 0, MaxBandwidth: 0})
}

func TestWalkerStaysWithinClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := RandomPerf(rng, 8, GustoGuided())
	w := NewWalker(rng, base, Drift{RelStep: 0.3, MinFactor: 0.5, MaxFactor: 2})
	for step := 0; step < 200; step++ {
		cur := w.Step()
		for i := 0; i < cur.N(); i++ {
			for j := 0; j < cur.N(); j++ {
				if i == j {
					continue
				}
				f := cur.At(i, j).Bandwidth / base.At(i, j).Bandwidth
				if f < 0.5-1e-9 || f > 2+1e-9 {
					t.Fatalf("step %d: bandwidth factor %g outside clamp", step, f)
				}
				if cur.At(i, j).Latency != base.At(i, j).Latency {
					t.Fatal("drift must not change latency")
				}
			}
		}
	}
}

func TestWalkerCurrentIsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := Gusto()
	w := NewWalker(rng, base, DefaultDrift())
	c := w.Current()
	c.Set(0, 1, PairPerf{Latency: 99, Bandwidth: 1})
	if w.Current().At(0, 1).Latency == 99 {
		t.Error("Current() leaked internal state")
	}
}

func TestTopologyPathSameSite(t *testing.T) {
	topo := ExampleTopology(3)
	path, err := topo.Path(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0].Name != "lan1" {
		t.Errorf("same-site path = %v, want just lan1", path)
	}
}

func TestTopologyPathCrossSite(t *testing.T) {
	topo := ExampleTopology(2)
	// Host 0 is at Site1, host 5 at Site3; route is lan1, t3, atm, lan3
	// because sites 1 and 3 have no direct link.
	path, err := topo.Path(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, l := range path {
		names = append(names, l.Name)
	}
	want := []string{"lan1", "t3-1-2", "atm-2-3", "lan3"}
	if len(names) != len(want) {
		t.Fatalf("path = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("path = %v, want %v", names, want)
		}
	}
}

func TestTopologyPairPerfBottleneck(t *testing.T) {
	topo := ExampleTopology(2)
	pp, err := topo.PairPerf(0, 2) // Site1 -> Site2 over the 45 Mbit t3
	if err != nil {
		t.Fatal(err)
	}
	// Bottleneck is Site2's 10 Mbit LAN.
	if got, want := BytesPerSecondToKbps(pp.Bandwidth), 10_000.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("bottleneck bandwidth = %g kbps, want %g", got, want)
	}
	wantLat := 0.001 + 0.020 + 0.002
	if math.Abs(pp.Latency-wantLat) > 1e-12 {
		t.Errorf("latency = %g, want %g", pp.Latency, wantLat)
	}
}

func TestTopologyPerfSelfFree(t *testing.T) {
	topo := ExampleTopology(2)
	p, err := topo.Perf()
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 6 {
		t.Fatalf("hosts = %d, want 6", p.N())
	}
	if p.TransferTime(3, 3, 1<<30) != 0 {
		t.Error("self transfer should be free")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("flattened table invalid: %v", err)
	}
}

func TestTopologyUnreachable(t *testing.T) {
	topo := NewTopology([]Site{
		{Name: "A", Hosts: 1, LAN: Link{Name: "lanA", Latency: 0.001, Bandwidth: 1e6}},
		{Name: "B", Hosts: 1, LAN: Link{Name: "lanB", Latency: 0.001, Bandwidth: 1e6}},
	})
	if _, err := topo.Path(0, 1); err == nil {
		t.Error("expected error for unreachable site pair")
	}
}

func TestTopologyHostOutOfRange(t *testing.T) {
	topo := ExampleTopology(1)
	if _, err := topo.Path(-1, 0); err == nil {
		t.Error("expected error for negative host")
	}
	if _, err := topo.Path(0, 99); err == nil {
		t.Error("expected error for host beyond range")
	}
}

func TestTopologyMultiHopRouting(t *testing.T) {
	// A - B - C chain plus a slow direct A-C link; Dijkstra on latency
	// should prefer the two-hop fast path.
	topo := NewTopology([]Site{
		{Name: "A", Hosts: 1, LAN: Link{Name: "lanA", Latency: 0.001, Bandwidth: 1e7}},
		{Name: "B", Hosts: 1, LAN: Link{Name: "lanB", Latency: 0.001, Bandwidth: 1e7}},
		{Name: "C", Hosts: 1, LAN: Link{Name: "lanC", Latency: 0.001, Bandwidth: 1e7}},
	})
	topo.ConnectSites(0, 1, Link{Name: "ab", Latency: 0.002, Bandwidth: 1e7})
	topo.ConnectSites(1, 2, Link{Name: "bc", Latency: 0.002, Bandwidth: 1e7})
	topo.ConnectSites(0, 2, Link{Name: "ac-slow", Latency: 0.100, Bandwidth: 1e7})
	path, err := topo.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 { // lanA, ab, bc, lanC
		t.Fatalf("path length = %d, want 4 (two-hop route)", len(path))
	}
	if path[1].Name != "ab" || path[2].Name != "bc" {
		t.Errorf("unexpected route %v", path)
	}
}

func TestSharedPerfDividesBandwidth(t *testing.T) {
	topo := ExampleTopology(2)
	// Two flows from Site1 to Site2 share lan1, t3, lan2.
	flows := []Flow{{Src: 0, Dst: 2}, {Src: 1, Dst: 3}}
	shared, err := topo.SharedPerf(flows)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := topo.PairPerf(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := shared.At(0, 2).Bandwidth
	want := solo.Bandwidth / 2 // bottleneck LAN2 shared by both flows
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("shared bandwidth = %g, want %g", got, want)
	}
	// A pair not in the flow set sees unshared bandwidth... except when
	// the contending flows load its links; here (4,5) is inside Site3
	// and is untouched.
	if shared.At(4, 5) != mustPair(t, topo, 4, 5) {
		t.Error("uninvolved pair should see unshared performance")
	}
}

func mustPair(t *testing.T, topo *Topology, i, j int) PairPerf {
	t.Helper()
	pp, err := topo.PairPerf(i, j)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestSharedPerfIgnoresDuplicatesAndSelf(t *testing.T) {
	topo := ExampleTopology(2)
	flows := []Flow{{Src: 0, Dst: 2}, {Src: 0, Dst: 2}, {Src: 1, Dst: 1}}
	shared, err := topo.SharedPerf(flows)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := topo.PairPerf(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shared.At(0, 2).Bandwidth-solo.Bandwidth) > 1e-6 {
		t.Error("duplicate flow should be counted once (no sharing)")
	}
}

func TestHostNames(t *testing.T) {
	topo := ExampleTopology(2)
	names := topo.HostNames()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	if names[0] != "Site1/0" || names[3] != "Site2/1" || names[5] != "Site3/1" {
		t.Errorf("unexpected names %v", names)
	}
}

func TestBackboneLinksSorted(t *testing.T) {
	topo := ExampleTopology(1)
	links := topo.BackboneLinks()
	if len(links) != 2 {
		t.Fatalf("backbone links = %d, want 2", len(links))
	}
	if links[0].Name > links[1].Name {
		t.Error("BackboneLinks not sorted")
	}
}

func TestTopologySiteAccessors(t *testing.T) {
	topo := ExampleTopology(3)
	if topo.Sites() != 3 || topo.Hosts() != 9 {
		t.Fatalf("sites=%d hosts=%d", topo.Sites(), topo.Hosts())
	}
	if topo.Site(1).Name != "Site2" {
		t.Error("Site(1) should be Site2")
	}
	if topo.HostSite(4) != 1 {
		t.Error("host 4 should be at site index 1")
	}
}

func TestDiurnalProfile(t *testing.T) {
	p, err := DiurnalProfile(5, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Multiplier stays within [0.5, 1.5] and oscillates.
	seen := map[bool]bool{}
	for _, tm := range []float64{0, 10, 25, 40, 60, 75, 90} {
		v := p(0, 1, tm)
		if v < 0.5-1e-9 || v > 1.5+1e-9 {
			t.Fatalf("multiplier %g outside depth band at t=%g", v, tm)
		}
		seen[v > 1] = true
	}
	if !seen[true] || !seen[false] {
		t.Error("profile never crossed 1 — not oscillating")
	}
	// Different sources peak at different phases.
	if p(0, 1, 25) == p(1, 0, 25) {
		t.Error("phases should differ per source")
	}
}

func TestDiurnalProfileValidation(t *testing.T) {
	if _, err := DiurnalProfile(5, 0, 0.5); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := DiurnalProfile(5, 100, 1); err == nil {
		t.Error("depth 1 accepted")
	}
	if _, err := DiurnalProfile(0, 100, 0.5); err == nil {
		t.Error("zero size accepted")
	}
}

func TestSampleProfile(t *testing.T) {
	base := Gusto()
	p, err := DiurnalProfile(5, 100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := SampleProfile(base, p, 25)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			if s.At(i, j).Latency != base.At(i, j).Latency {
				t.Fatal("profile must not change latency")
			}
			ratio := s.At(i, j).Bandwidth / base.At(i, j).Bandwidth
			if ratio < 0.7-1e-9 || ratio > 1.3+1e-9 {
				t.Fatalf("bandwidth ratio %g outside depth band", ratio)
			}
		}
	}
	// FlatProfile is the identity.
	flat := SampleProfile(base, FlatProfile, 42)
	if flat.At(0, 1) != base.At(0, 1) {
		t.Error("flat profile changed the table")
	}
}

func TestProfileSeries(t *testing.T) {
	base := Gusto()
	p, err := DiurnalProfile(5, 100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	series, err := ProfileSeries(base, p, []float64{0, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatal("wrong series length")
	}
	if _, err := ProfileSeries(base, p, nil); err == nil {
		t.Error("empty times accepted")
	}
	if _, err := ProfileSeries(base, p, []float64{0, 0}); err == nil {
		t.Error("non-increasing times accepted")
	}
	bad := func(int, int, float64) float64 { return -1 }
	if _, err := ProfileSeries(base, bad, []float64{0}); err == nil {
		t.Error("invalid profile output accepted")
	}
}

func TestNewPerfNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPerf(-1) did not panic")
		}
	}()
	NewPerf(-1)
}
