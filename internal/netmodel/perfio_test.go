package netmodel

import (
	"math/rand"
	"strings"
	"testing"
)

func TestMarshalPerfRoundTrip(t *testing.T) {
	p := Gusto()
	data, err := MarshalPerf(p, GustoSites)
	if err != nil {
		t.Fatal(err)
	}
	back, names, err := UnmarshalPerf(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 || names[0] != "AMES" {
		t.Errorf("names = %v", names)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if back.At(i, j) != p.At(i, j) {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMarshalPerfNoNames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomPerf(rng, 7, GustoGuided())
	data, err := MarshalPerf(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"names"`) {
		t.Error("names should be omitted when nil")
	}
	back, names, err := UnmarshalPerf(data)
	if err != nil {
		t.Fatal(err)
	}
	if names != nil {
		t.Error("expected nil names")
	}
	if back.N() != 7 {
		t.Error("size lost")
	}
}

func TestMarshalPerfErrors(t *testing.T) {
	if _, err := MarshalPerf(nil, nil); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := MarshalPerf(Gusto(), []string{"x"}); err == nil {
		t.Error("name count mismatch accepted")
	}
}

func TestUnmarshalPerfErrors(t *testing.T) {
	cases := []string{
		`{`,                                    // malformed
		`{"n":-1,"latency":[],"bandwidth":[]}`, // negative
		`{"n":2,"latency":[[0,1]],"bandwidth":[[0,1],[1,0]]}`,                     // short table
		`{"n":2,"latency":[[0,1],[1,0]],"bandwidth":[[0,1],[1]]}`,                 // ragged
		`{"n":2,"names":["a"],"latency":[[0,1],[1,0]],"bandwidth":[[0,1],[1,0]]}`, // bad names
		`{"n":2,"latency":[[0,-1],[1,0]],"bandwidth":[[0,1],[1,0]]}`,              // invalid entry
	}
	for k, src := range cases {
		if _, _, err := UnmarshalPerf([]byte(src)); err == nil {
			t.Errorf("case %d accepted", k)
		}
	}
}
