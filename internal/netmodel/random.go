package netmodel

import (
	"fmt"
	"math/rand"
)

// Random problem generation. The paper's simulator "generates random
// performance characteristics for pairwise network performance, using
// information from the GUSTO directory service as a guideline". This
// file reproduces that generator: latencies and bandwidths are drawn
// uniformly from the ranges observed in Tables 1 and 2, independently
// per pair (or symmetrically, matching the symmetric GUSTO tables).

// GenConfig controls random pairwise performance generation. All units
// are SI (seconds, bytes/second).
type GenConfig struct {
	MinLatency   float64
	MaxLatency   float64
	MinBandwidth float64
	MaxBandwidth float64
	// Symmetric makes perf(i,j) == perf(j,i), as in the GUSTO tables.
	Symmetric bool
}

// GustoGuided returns the generator configuration the paper uses: the
// latency and bandwidth ranges observed in the GUSTO tables, with
// symmetric pairs.
func GustoGuided() GenConfig {
	minLat, maxLat, minBW, maxBW := GustoRanges()
	return GenConfig{
		MinLatency:   minLat,
		MaxLatency:   maxLat,
		MinBandwidth: minBW,
		MaxBandwidth: maxBW,
		Symmetric:    true,
	}
}

// validate panics on nonsensical configuration; generation is used in
// tight experiment loops so misconfiguration should fail loudly.
func (c GenConfig) validate() {
	if c.MinLatency < 0 || c.MaxLatency < c.MinLatency {
		panic(fmt.Sprintf("netmodel: invalid latency range [%g, %g]", c.MinLatency, c.MaxLatency))
	}
	if c.MinBandwidth <= 0 || c.MaxBandwidth < c.MinBandwidth {
		panic(fmt.Sprintf("netmodel: invalid bandwidth range [%g, %g]", c.MinBandwidth, c.MaxBandwidth))
	}
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi == lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// RandomPerf generates an n×n performance table with entries drawn
// uniformly from the configured ranges. Diagonal entries get the free
// local-copy performance. The generator is fully determined by rng.
func RandomPerf(rng *rand.Rand, n int, cfg GenConfig) *Perf {
	cfg.validate()
	p := NewPerf(n)
	for i := 0; i < n; i++ {
		p.Set(i, i, PairPerf{Latency: 0, Bandwidth: localBandwidth})
		for j := i + 1; j < n; j++ {
			a := PairPerf{
				Latency:   uniform(rng, cfg.MinLatency, cfg.MaxLatency),
				Bandwidth: uniform(rng, cfg.MinBandwidth, cfg.MaxBandwidth),
			}
			b := a
			if !cfg.Symmetric {
				b = PairPerf{
					Latency:   uniform(rng, cfg.MinLatency, cfg.MaxLatency),
					Bandwidth: uniform(rng, cfg.MinBandwidth, cfg.MaxBandwidth),
				}
			}
			p.Set(i, j, a)
			p.Set(j, i, b)
		}
	}
	return p
}

// Drift perturbs bandwidths with a bounded multiplicative random walk,
// modelling the continuously changing network conditions of a shared
// metacomputing environment (Section 1 of the paper). Each step
// multiplies every off-diagonal bandwidth by a factor drawn uniformly
// from [1-RelStep, 1+RelStep], clamped so the bandwidth stays within
// [MinFactor, MaxFactor] times its original value.
type Drift struct {
	RelStep   float64 // per-step relative change, e.g. 0.1 for ±10%
	MinFactor float64 // lower clamp relative to the base table, e.g. 0.25
	MaxFactor float64 // upper clamp relative to the base table, e.g. 4.0
}

// DefaultDrift is a moderate load model: ±10% per step, bounded to
// [1/4, 4] of the base bandwidth.
func DefaultDrift() Drift { return Drift{RelStep: 0.10, MinFactor: 0.25, MaxFactor: 4.0} }

// Walker carries the evolving state of a bandwidth random walk over a
// base performance table.
type Walker struct {
	base    *Perf
	current *Perf
	drift   Drift
	rng     *rand.Rand
}

// NewWalker starts a random walk at the given base table.
func NewWalker(rng *rand.Rand, base *Perf, drift Drift) *Walker {
	if drift.RelStep < 0 || drift.RelStep >= 1 {
		panic(fmt.Sprintf("netmodel: invalid drift step %g", drift.RelStep))
	}
	if drift.MinFactor <= 0 || drift.MaxFactor < drift.MinFactor {
		panic(fmt.Sprintf("netmodel: invalid drift clamp [%g, %g]", drift.MinFactor, drift.MaxFactor))
	}
	return &Walker{base: base.Clone(), current: base.Clone(), drift: drift, rng: rng}
}

// Current returns a copy of the present table.
func (w *Walker) Current() *Perf { return w.current.Clone() }

// Step advances the walk once and returns a copy of the new table.
func (w *Walker) Step() *Perf {
	n := w.current.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pp := w.current.At(i, j)
			base := w.base.At(i, j).Bandwidth
			f := 1 + (w.rng.Float64()*2-1)*w.drift.RelStep
			bw := pp.Bandwidth * f
			if min := base * w.drift.MinFactor; bw < min {
				bw = min
			}
			if max := base * w.drift.MaxFactor; bw > max {
				bw = max
			}
			pp.Bandwidth = bw
			w.current.Set(i, j, pp)
		}
	}
	return w.Current()
}
