package netmodel

import (
	"math"
	"math/rand"
	"testing"
)

// TestPerfEqual pins the semantics the replan fast path relies on:
// Equal is exact entry equality, so any change — however small — and
// any NaN reads as "not equal".
func TestPerfEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomPerf(rng, 6, GustoGuided())
	if !p.Equal(p) {
		t.Fatal("table not equal to itself")
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("table not equal to its clone")
	}
	if p.Equal(nil) {
		t.Fatal("table equal to nil")
	}
	if p.Equal(NewPerf(5)) {
		t.Fatal("tables of different sizes equal")
	}
	q := p.Clone()
	pp := q.At(2, 3)
	pp.Latency = math.Nextafter(pp.Latency, math.Inf(1))
	q.Set(2, 3, pp)
	if p.Equal(q) {
		t.Fatal("one-ulp latency change not detected")
	}
	q = p.Clone()
	pp = q.At(4, 1)
	pp.Bandwidth = math.NaN()
	q.Set(4, 1, pp)
	if q.Equal(q) {
		t.Fatal("NaN entry compared equal; fast paths would serve stale plans")
	}
}
