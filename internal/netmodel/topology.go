package netmodel

import (
	"fmt"
	"math"
	"sort"
)

// This file models a metacomputing topology like the paper's Figure 1:
// compute hosts clustered into sites, each site with a local network,
// sites joined by long-haul backbone links. Routing between two hosts
// traverses the source site's LAN, zero or more backbone links, and the
// destination site's LAN. The topology can be flattened into a Perf
// table of end-to-end pair performance, optionally dividing each link's
// bandwidth among the flows that share it — the sharing rule stated in
// Section 3.1 of the paper ("if the paths between two distinct node
// pairs share a common link, the bandwidth of the common link is
// divided among these communicating pairs").

// Link is a physical network segment with a fixed traversal latency and
// a total bandwidth that concurrent flows share.
type Link struct {
	Name      string
	Latency   float64 // seconds to traverse the link
	Bandwidth float64 // total bytes per second available on the link
}

// Site is a collection of hosts behind one local network.
type Site struct {
	Name  string
	Hosts int  // number of compute hosts at the site
	LAN   Link // the site's local network segment
}

// Topology is a collection of sites joined by backbone links. Backbone
// connectivity may be sparse; routing finds the lowest-latency backbone
// path between sites.
type Topology struct {
	sites    []Site
	backbone map[[2]int]Link // key is (min site index, max site index)
	hostSite []int           // global host id -> site index
}

// NewTopology builds a topology from the given sites. Backbone links
// are added with ConnectSites.
func NewTopology(sites []Site) *Topology {
	t := &Topology{
		sites:    append([]Site(nil), sites...),
		backbone: make(map[[2]int]Link),
	}
	for si, s := range t.sites {
		if s.Hosts < 0 {
			panic(fmt.Sprintf("netmodel: site %q has negative host count", s.Name))
		}
		for h := 0; h < s.Hosts; h++ {
			t.hostSite = append(t.hostSite, si)
		}
	}
	return t
}

// ConnectSites adds a bidirectional backbone link between sites a and b.
func (t *Topology) ConnectSites(a, b int, link Link) {
	if a == b {
		panic("netmodel: backbone link must join two distinct sites")
	}
	if a > b {
		a, b = b, a
	}
	t.backbone[[2]int{a, b}] = link
}

// Hosts returns the total number of hosts across all sites. Hosts are
// numbered globally, site by site, in declaration order.
func (t *Topology) Hosts() int { return len(t.hostSite) }

// Sites returns the number of sites.
func (t *Topology) Sites() int { return len(t.sites) }

// Site returns the site definition at index si.
func (t *Topology) Site(si int) Site { return t.sites[si] }

// HostSite returns the site index that global host h belongs to.
func (t *Topology) HostSite(h int) int { return t.hostSite[h] }

// backboneLink returns the direct link between sites a and b, if any.
func (t *Topology) backboneLink(a, b int) (Link, bool) {
	if a > b {
		a, b = b, a
	}
	l, ok := t.backbone[[2]int{a, b}]
	return l, ok
}

// sitePath returns the sequence of backbone links on the lowest-latency
// route from site a to site b, found with Dijkstra over link latencies.
// It returns nil, false when b is unreachable from a.
func (t *Topology) sitePath(a, b int) ([]Link, bool) {
	if a == b {
		return nil, true
	}
	const unreached = math.MaxFloat64
	n := len(t.sites)
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = unreached
		prev[i] = -1
	}
	dist[a] = 0
	for {
		u, best := -1, unreached
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u == -1 {
			break
		}
		if u == b {
			break
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			l, ok := t.backboneLink(u, v)
			if !ok {
				continue
			}
			if d := dist[u] + l.Latency; d < dist[v] {
				dist[v] = d
				prev[v] = u
			}
		}
	}
	if dist[b] == unreached {
		return nil, false
	}
	// Walk predecessors back from b and reverse.
	var rev []Link
	for v := b; v != a; v = prev[v] {
		l, _ := t.backboneLink(prev[v], v)
		rev = append(rev, l)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// Path returns the ordered links a message from host src to host dst
// traverses: the source LAN, any backbone links, and the destination
// LAN. Hosts at the same site share only that site's LAN. It returns
// an error when no backbone route exists.
func (t *Topology) Path(src, dst int) ([]Link, error) {
	if src < 0 || src >= t.Hosts() || dst < 0 || dst >= t.Hosts() {
		return nil, fmt.Errorf("netmodel: host out of range: src=%d dst=%d hosts=%d", src, dst, t.Hosts())
	}
	sa, sb := t.hostSite[src], t.hostSite[dst]
	if sa == sb {
		return []Link{t.sites[sa].LAN}, nil
	}
	mid, ok := t.sitePath(sa, sb)
	if !ok {
		return nil, fmt.Errorf("netmodel: no route between sites %q and %q", t.sites[sa].Name, t.sites[sb].Name)
	}
	path := make([]Link, 0, len(mid)+2)
	path = append(path, t.sites[sa].LAN)
	path = append(path, mid...)
	path = append(path, t.sites[sb].LAN)
	return path, nil
}

// PairPerf flattens the routed path from src to dst into end-to-end
// performance: latency is the sum of link latencies; bandwidth is the
// minimum link bandwidth (the bottleneck), with no sharing applied.
func (t *Topology) PairPerf(src, dst int) (PairPerf, error) {
	if src == dst {
		return PairPerf{Latency: 0, Bandwidth: localBandwidth}, nil
	}
	path, err := t.Path(src, dst)
	if err != nil {
		return PairPerf{}, err
	}
	return flatten(path), nil
}

func flatten(path []Link) PairPerf {
	var pp PairPerf
	pp.Bandwidth = math.Inf(1)
	for _, l := range path {
		pp.Latency += l.Latency
		if l.Bandwidth < pp.Bandwidth {
			pp.Bandwidth = l.Bandwidth
		}
	}
	return pp
}

// Perf flattens the whole topology into an end-to-end performance
// table with no bandwidth sharing (each pair sees bottleneck bandwidth
// as if it were alone on the network).
func (t *Topology) Perf() (*Perf, error) {
	n := t.Hosts()
	p := NewPerf(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pp, err := t.PairPerf(i, j)
			if err != nil {
				return nil, err
			}
			p.Set(i, j, pp)
		}
	}
	return p, nil
}

// Flow identifies one active host-to-host communication.
type Flow struct {
	Src, Dst int
}

// SharedPerf flattens the topology into a performance table while
// dividing each link's bandwidth equally among the given concurrent
// flows that cross it, implementing the sharing rule of Section 3.1.
// Pairs not participating in any flow see unshared bottleneck
// bandwidth. Duplicate flows are counted once; self flows are ignored.
func (t *Topology) SharedPerf(flows []Flow) (*Perf, error) {
	// Count, per link name, how many distinct flows traverse it.
	use := make(map[string]int)
	seen := make(map[Flow]bool)
	flowPaths := make(map[Flow][]Link)
	for _, f := range flows {
		if f.Src == f.Dst || seen[f] {
			continue
		}
		seen[f] = true
		path, err := t.Path(f.Src, f.Dst)
		if err != nil {
			return nil, err
		}
		flowPaths[f] = path
		for _, l := range path {
			use[l.Name]++
		}
	}
	n := t.Hosts()
	p := NewPerf(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				p.Set(i, j, PairPerf{Latency: 0, Bandwidth: localBandwidth})
				continue
			}
			f := Flow{Src: i, Dst: j}
			path := flowPaths[f]
			if path == nil {
				var err error
				path, err = t.Path(i, j)
				if err != nil {
					return nil, err
				}
			}
			var pp PairPerf
			pp.Bandwidth = math.Inf(1)
			for _, l := range path {
				pp.Latency += l.Latency
				bw := l.Bandwidth
				if c := use[l.Name]; c > 1 && seen[f] {
					bw /= float64(c)
				}
				if bw < pp.Bandwidth {
					pp.Bandwidth = bw
				}
			}
			p.Set(i, j, pp)
		}
	}
	return p, nil
}

// HostNames returns a stable, human-readable name for every global
// host, of the form "<site>/<k>".
func (t *Topology) HostNames() []string {
	names := make([]string, 0, t.Hosts())
	counts := make(map[int]int)
	for h := 0; h < t.Hosts(); h++ {
		si := t.hostSite[h]
		names = append(names, fmt.Sprintf("%s/%d", t.sites[si].Name, counts[si]))
		counts[si]++
	}
	return names
}

// BackboneLinks returns all backbone links sorted by name, for
// inspection and display.
func (t *Topology) BackboneLinks() []Link {
	links := make([]Link, 0, len(t.backbone))
	for _, l := range t.backbone {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i].Name < links[j].Name })
	return links
}

// ExampleTopology returns a small three-site system in the spirit of
// the paper's Figure 1: a supercomputer-class site, a workstation
// cluster, and a visualization site, joined by heterogeneous long-haul
// links. hostsPerSite controls the size of each site.
func ExampleTopology(hostsPerSite int) *Topology {
	t := NewTopology([]Site{
		{Name: "Site1", Hosts: hostsPerSite, LAN: Link{Name: "lan1", Latency: 0.001, Bandwidth: KbpsToBytesPerSecond(100_000)}},
		{Name: "Site2", Hosts: hostsPerSite, LAN: Link{Name: "lan2", Latency: 0.002, Bandwidth: KbpsToBytesPerSecond(10_000)}},
		{Name: "Site3", Hosts: hostsPerSite, LAN: Link{Name: "lan3", Latency: 0.001, Bandwidth: KbpsToBytesPerSecond(155_000)}},
	})
	t.ConnectSites(0, 1, Link{Name: "t3-1-2", Latency: 0.020, Bandwidth: KbpsToBytesPerSecond(45_000)})
	t.ConnectSites(1, 2, Link{Name: "atm-2-3", Latency: 0.015, Bandwidth: KbpsToBytesPerSecond(155_000)})
	return t
}
