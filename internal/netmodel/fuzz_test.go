package netmodel

import "testing"

// FuzzUnmarshalPerf exercises the JSON decoder: no panics, and
// anything accepted must be a valid table that round-trips.
func FuzzUnmarshalPerf(f *testing.F) {
	seed, _ := MarshalPerf(Gusto(), GustoSites)
	f.Add(string(seed))
	f.Add(`{"n":0,"latency":[],"bandwidth":[]}`)
	f.Add(`{"n":1,"latency":[[0]],"bandwidth":[[0]]}`)
	f.Add(`{`)
	f.Add(`{"n":2,"latency":[[0,1],[1,0]],"bandwidth":[[0,1],[1,0]]}`)
	f.Fuzz(func(t *testing.T, src string) {
		p, names, err := UnmarshalPerf([]byte(src))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid table: %v", err)
		}
		data, err := MarshalPerf(p, names)
		if err != nil {
			t.Fatalf("accepted table failed to re-encode: %v", err)
		}
		back, _, err := UnmarshalPerf(data)
		if err != nil {
			t.Fatalf("re-encoded table failed to decode: %v", err)
		}
		if back.N() != p.N() {
			t.Fatal("round trip changed size")
		}
	})
}
