// Multinet: the multiple-heterogeneous-network techniques from the
// paper's related work (Kim & Lilja). A cluster's hosts are joined by
// both Ethernet (1 ms start-up, 10 Mbit/s) and ATM (20 ms start-up,
// 155 Mbit/s). Choosing the network per message size (PBPS) or
// striping messages across both (aggregation) collapses into ordinary
// cost matrices — which the collective schedulers then consume
// unchanged.
//
//	go run ./examples/multinet
package main

import (
	"fmt"
	"log"

	"hetsched"
)

func main() {
	const p = 12
	sys := hetsched.NewMultiNetSystem(p)
	eth := hetsched.PairPerf{Latency: 0.001, Bandwidth: 1.25e6}   // 10 Mbit/s
	atm := hetsched.PairPerf{Latency: 0.020, Bandwidth: 1.9375e7} // 155 Mbit/s
	if err := sys.AddNetwork("ethernet", eth); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddNetwork("atm", atm); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%10s %16s %16s %16s\n", "msg bytes", "single-fastest", "pbps", "aggregation")
	for _, size := range []int64{1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		sizes := hetsched.UniformSizes(p, size)
		var row []float64
		for _, tech := range []hetsched.MultiNetTechnique{
			hetsched.SingleFastest, hetsched.UsePBPS, hetsched.UseAggregation,
		} {
			m, err := sys.Matrix(sizes, tech)
			if err != nil {
				log.Fatal(err)
			}
			r, err := hetsched.OpenShop().Schedule(m)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, r.CompletionTime())
		}
		fmt.Printf("%10d %15.4fs %15.4fs %15.4fs\n", size, row[0], row[1], row[2])
	}
	fmt.Println("\ntotal exchange completion: PBPS rescues start-up-bound sizes,")
	fmt.Println("aggregation adds a bandwidth-bound stripe on top.")
}
