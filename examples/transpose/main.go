// Transpose: redistribute a matrix from rows to columns across a
// three-site metacomputing system — the motivating application of the
// paper's Section 4.1. A 4096×4096 matrix of float64 elements starts
// distributed by rows over 9 hosts spread across three sites (the
// Figure 1 system: a fast site, a slow workstation site, and a
// visualization site joined by T3 and ATM links); transposing it so
// each host owns a band of columns is an all-to-all personalized
// exchange whose messages cross links of very different speeds.
//
//	go run ./examples/transpose
package main

import (
	"fmt"
	"log"

	"hetsched"
)

func main() {
	// Three sites, three hosts each (Figure 1 flavor).
	topo := hetsched.ExampleTopology(3)
	hosts := topo.Hosts()
	fmt.Printf("system: %d hosts across %d sites: %v\n\n", hosts, topo.Sites(), topo.HostNames())

	// Flatten routed paths into end-to-end pairwise performance.
	perf, err := topo.Perf()
	if err != nil {
		log.Fatal(err)
	}

	// The transpose workload: message i→j carries rows(i) × cols(j)
	// elements of 8 bytes.
	sizes, err := hetsched.TransposeSizes(hosts, 4096, 4096, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bytes moved: %d MB total\n\n", sizes.TotalBytes()>>20)

	m, err := hetsched.Build(perf, sizes)
	if err != nil {
		log.Fatal(err)
	}

	results, err := hetsched.Compare(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hetsched.FormatComparison(results))

	// Execute the open shop plan through the event-driven simulator to
	// confirm the predicted completion holds under FIFO receive
	// arbitration.
	best, err := hetsched.OpenShop().Schedule(m)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := hetsched.PlanFromSchedule(best.Schedule, sizes)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := hetsched.Simulate(perf, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanned completion:  %.3f s\n", best.CompletionTime())
	fmt.Printf("simulated execution: %.3f s (FIFO arbitration)\n", exec.Finish)
}
