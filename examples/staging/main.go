// Staging: the BADD-style data staging problem the paper discusses in
// Sections 2 and 6.4. Data items (terrain maps, imagery) live on a few
// repository machines of the GUSTO testbed; requester machines need
// them by deadlines. The staged policy relays items through fast
// intermediates and reuses every copy it makes; the direct policy
// ships each item straight from a repository.
//
//	go run ./examples/staging
package main

import (
	"fmt"
	"log"

	"hetsched"
)

func main() {
	perf := hetsched.Gusto()
	prob := &hetsched.StagingProblem{
		N:    5,
		Perf: perf,
		Items: []hetsched.StagingItem{
			{Name: "terrain", Size: 8 << 20, Sources: []int{2}},   // at IND, behind slow links
			{Name: "imagery", Size: 2 << 20, Sources: []int{3}},   // at USC-ISI
			{Name: "weather", Size: 512 << 10, Sources: []int{1}}, // at ANL
		},
	}
	// Every site wants everything; imagery is urgent.
	for dst := 0; dst < 5; dst++ {
		prob.Requests = append(prob.Requests,
			hetsched.StagingRequest{Item: "imagery", Dst: dst, Deadline: 20, Priority: 2},
			hetsched.StagingRequest{Item: "terrain", Dst: dst, Deadline: 400, Priority: 1},
			hetsched.StagingRequest{Item: "weather", Dst: dst, Deadline: 60},
		)
	}

	for _, policy := range []hetschedPolicy{
		{"staged", hetsched.StagedDelivery},
		{"direct-only", hetsched.DirectDelivery},
	} {
		res, err := hetsched.ScheduleStaging(prob, policy.p)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics()
		fmt.Printf("%-12s  requests=%d missed=%d max_late=%.1fs mean_resp=%.1fs transfers=%d\n",
			policy.name, m.Requests, m.Missed, m.MaxLateness, m.MeanResponse, m.Transfers)
	}

	// Show the full staged delivery log: relays appear as multi-site
	// paths, later requests ride resident copies.
	res, err := hetsched.ScheduleStaging(prob, hetsched.StagedDelivery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndeliveries (staged):")
	for _, d := range res.Deliveries {
		late := ""
		if d.Missed() {
			late = "  LATE"
		}
		fmt.Printf("  %-8s → %-8s at %7.1fs via %v%s\n",
			d.Item, hetsched.GustoSites[d.Dst], d.ArrivedAt, siteNames(d.Path), late)
	}
}

type hetschedPolicy struct {
	name string
	p    hetsched.StagingPolicy
}

func siteNames(path []int) []string {
	out := make([]string, len(path))
	for i, p := range path {
		out[i] = hetsched.GustoSites[p]
	}
	return out
}
