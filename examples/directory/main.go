// Directory: the full network-aware loop of the paper's Figure 2,
// in one process. A directory service (the Globus-MDS stand-in) serves
// pairwise performance over TCP while a synthetic load model drifts
// the bandwidths; the application repeatedly snapshots the directory,
// rebuilds the communication matrix, and reschedules — showing the
// schedule adapt as conditions change.
//
//	go run ./examples/directory
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"hetsched"
	"hetsched/internal/directory"
	"hetsched/internal/netmodel"
)

func main() {
	// Serve the GUSTO tables on an ephemeral port.
	store, err := hetsched.NewDirectory(hetsched.Gusto(), hetsched.GustoSites)
	if err != nil {
		log.Fatal(err)
	}
	srv := hetsched.NewDirectoryServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("directory serving on %s\n\n", addr)

	// Synthetic load: drift the published bandwidths.
	feeder := directory.NewFeeder(store, rand.New(rand.NewSource(42)), netmodel.Drift{
		RelStep: 0.35, MinFactor: 0.2, MaxFactor: 3,
	})

	client, err := hetsched.DialDirectory(addr, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fmt.Printf("%5s %8s %12s %12s %10s\n", "round", "version", "t_lb (s)", "t_max (s)", "ratio")
	for round := 0; round < 6; round++ {
		perf, _, version, err := client.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		m, err := hetsched.BuildUniform(perf, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hetsched.OpenShop().Schedule(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %8d %12.3f %12.3f %10.3f\n",
			round, version, res.LowerBound, res.CompletionTime(), res.Ratio())

		// The network shifts before the next data set arrives.
		for k := 0; k < 5; k++ {
			if _, err := feeder.Tick(); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\neach round rescheduled from a fresh directory snapshot —")
	fmt.Println("the completion time tracks the moving lower bound.")
}
