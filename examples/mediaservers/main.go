// Mediaservers: the Figure 12 scenario. A fifth of the processors are
// multimedia servers holding images and video; they push large (1 MB)
// objects to every client while control traffic between all other
// pairs stays small (1 kB). The fixed homogeneous schedule pays the
// slowest server transfer on every step; the adaptive schedulers
// overlap them and track the lower bound.
//
//	go run ./examples/mediaservers [-p 20] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"hetsched"
)

func main() {
	p := flag.Int("p", 20, "number of processors")
	seed := flag.Int64("seed", 7, "random seed for network generation")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	perf := hetsched.RandomPerf(rng, *p, hetsched.GustoGuided())

	spec := hetsched.DefaultWorkload(hetsched.WorkloadServers, *p)
	sizes := hetsched.WorkloadSizes(rng, spec)
	fmt.Printf("%d processors, %d of them servers; %d MB on the wire\n\n",
		*p, spec.NumServers(), sizes.TotalBytes()>>20)

	m, err := hetsched.Build(perf, sizes)
	if err != nil {
		log.Fatal(err)
	}
	results, err := hetsched.Compare(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hetsched.FormatComparison(results))

	// The paper's headline: how much the adaptive schedules save over
	// the homogeneous-era technique.
	var barrier, openshop float64
	for _, r := range results {
		switch r.Algorithm {
		case "baseline-barrier":
			barrier = r.CompletionTime()
		case "openshop":
			openshop = r.CompletionTime()
		}
	}
	fmt.Printf("\nopen shop is %.1f× faster than the lockstep homogeneous schedule\n", barrier/openshop)
}
