// Adaptive: checkpoint-based rescheduling while the network drifts
// (the paper's Section 6.3). An exchange is planned from directory
// estimates; a quarter of the way through, a fifth of the links lose
// 10× bandwidth. Execution pauses at checkpoints, re-queries the
// directory, and reschedules the remaining messages with the open shop
// heuristic — compared against stubbornly keeping the stale order.
//
//	go run ./examples/adaptive [-p 16] [-seed 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"hetsched"
)

func main() {
	p := flag.Int("p", 16, "number of processors")
	seed := flag.Int64("seed", 3, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	before := hetsched.RandomPerf(rng, *p, hetsched.GustoGuided())

	// The shift: 20% of links crash to a tenth of their bandwidth.
	after := before.Clone()
	crashed := 0
	for i := 0; i < *p; i++ {
		for j := 0; j < *p; j++ {
			if i != j && rng.Float64() < 0.2 {
				pp := after.At(i, j)
				pp.Bandwidth /= 10
				after.Set(i, j, pp)
				crashed++
			}
		}
	}

	sizes := hetsched.UniformSizes(*p, 1<<20)
	m, err := hetsched.Build(before, sizes)
	if err != nil {
		log.Fatal(err)
	}
	planned, err := hetsched.OpenShop().Schedule(m)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := hetsched.PlanFromSchedule(planned.Schedule, sizes)
	if err != nil {
		log.Fatal(err)
	}

	shift := planned.CompletionTime() / 4
	net, err := hetsched.NewPiecewiseNetwork([]hetsched.Epoch{
		{Start: 0, Perf: before},
		{Start: shift, Perf: after},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned completion %.2f s; %d links crash 10x at t=%.2f s\n\n",
		planned.CompletionTime(), crashed, shift)

	arms := []struct {
		name   string
		policy hetsched.CheckpointPolicy
		replan hetsched.Replanner
	}{
		{"no checkpoints", hetsched.NoCheckpoints{}, hetsched.KeepOrder},
		{"checkpoints, keep order", hetsched.EveryEvents{K: *p}, hetsched.KeepOrder},
		{"checkpoints, reschedule", hetsched.EveryEvents{K: *p}, hetsched.ReplanOpenShop},
		{"halving, reschedule", hetsched.Halving{}, hetsched.ReplanOpenShop},
	}
	fmt.Printf("%-26s %12s %12s\n", "strategy", "finish (s)", "checkpoints")
	for _, arm := range arms {
		res, err := hetsched.SimulateCheckpointed(net, net.At, plan, arm.policy, arm.replan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %12.2f %12d\n", arm.name, res.Finish, res.Checkpoints)
	}
}
