// Quickstart: schedule a total exchange over the GUSTO testbed.
//
// This is the minimal end-to-end flow of the library: take pairwise
// network performance (here the paper's published GUSTO measurements,
// Tables 1 and 2), build the communication matrix for 1 MB messages,
// run every scheduler, and render the best schedule's timing diagram.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetsched"
)

func main() {
	// 1. Network performance, as a directory service would report it.
	perf := hetsched.Gusto()
	fmt.Printf("GUSTO sites: %v\n\n", hetsched.GustoSites)

	// 2. The communication model turns (latency, bandwidth, size) into
	//    a P×P matrix of predicted transfer times.
	m, err := hetsched.BuildUniform(perf, 1<<20) // 1 MB between every pair
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("communication matrix (seconds):\n%s\n", hetsched.FormatMatrix(m))

	// 3. Compare every scheduling algorithm from the paper.
	results, err := hetsched.Compare(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(hetsched.FormatComparison(results))

	// 4. Schedule with the open shop heuristic (the paper's winner,
	//    guaranteed within 2× the lower bound) and draw the diagram.
	res, err := hetsched.OpenShop().Schedule(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nopen shop timing diagram (t_lb = %.3f s):\n", res.LowerBound)
	fmt.Print(hetsched.RenderASCII(res.Schedule, hetsched.RenderOptions{Rows: 16}))
}
