// Repeated: the Section 6.2 scenario end to end. A sensor-style
// application performs the same total exchange over and over while the
// network breathes under a diurnal load profile. The Communicator
// plans the first exchange from a directory snapshot and then, each
// round, repairs only the schedule steps whose event costs drifted —
// falling back to a full recomputation when most of the schedule is
// stale.
//
//	go run ./examples/repeated
package main

import (
	"fmt"
	"log"

	"hetsched"
)

func main() {
	base := hetsched.Gusto()
	profile, err := hetsched.DiurnalProfile(5, 3600, 0.4) // hour-long "day", ±40% load
	if err != nil {
		log.Fatal(err)
	}

	// The directory source: the network as of the current round's time.
	now := 0.0
	source := func() (*hetsched.Perf, error) {
		return hetsched.SampleProfile(base, profile, now), nil
	}
	comm, err := hetsched.NewCommunicator(5, source, hetsched.CommConfig{RepairThreshold: 0.04})
	if err != nil {
		log.Fatal(err)
	}

	sizes := hetsched.UniformSizes(5, 1<<20)
	fmt.Printf("%6s %10s %12s %12s %10s %s\n", "round", "t (s)", "t_lb (s)", "t_max (s)", "ratio", "planned by")
	for round := 0; round < 10; round++ {
		r, err := comm.AllToAllRepeated(sizes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %10.0f %12.2f %12.2f %10.3f %s\n",
			round, now, r.LowerBound, r.CompletionTime(), comm.Quality(r), r.Algorithm)
		now += 60 // the next data set arrives a minute later
	}
	st := comm.Stats()
	fmt.Printf("\nplanning effort: %d full plans, %d incremental repairs, %d forced recomputes\n",
		st.Plans, st.Repairs, st.Recomputes)
	fmt.Println("repairs re-match only the schedule steps whose costs drifted (§6.2).")
}
