package hetsched_test

import (
	"fmt"
	"log"

	"hetsched"
)

// ExampleCommunicator plans repeated exchanges from directory
// snapshots, repairing incrementally while the network holds still.
func ExampleCommunicator() {
	comm, err := hetsched.NewCommunicator(5, hetsched.StaticCommSource(hetsched.Gusto()), hetsched.CommConfig{})
	if err != nil {
		log.Fatal(err)
	}
	sizes := hetsched.UniformSizes(5, 1<<20)
	for round := 0; round < 3; round++ {
		r, err := comm.AllToAllRepeated(sizes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: %s, ratio %.3f\n", round, r.Algorithm, comm.Quality(r))
	}
	st := comm.Stats()
	fmt.Printf("plans=%d repairs=%d\n", st.Plans, st.Repairs)
	// Output:
	// round 0: maxmatch, ratio 1.018
	// round 1: maxmatch+repair, ratio 1.018
	// round 2: maxmatch+repair, ratio 1.018
	// plans=1 repairs=2
}

// ExampleBruck shows the combine-and-forward alternative: fewer
// start-ups, about log2(P)/2 times the volume.
func ExampleBruck() {
	perf := hetsched.Gusto()
	res, err := hetsched.Bruck(perf, hetsched.UniformSizes(5, 1<<10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rounds: %d\n", res.Rounds)
	fmt.Printf("volume inflation: %.2f\n", res.VolumeInflation())
	// Output:
	// rounds: 3
	// volume inflation: 1.25
}

// ExampleNewMultiNetSystem builds an Ethernet+ATM cluster and shows
// PBPS picking the right network per message size.
func ExampleNewMultiNetSystem() {
	sys := hetsched.NewMultiNetSystem(4)
	eth := hetsched.PairPerf{Latency: 0.001, Bandwidth: 1.25e6} // 10 Mbit/s
	atm := hetsched.PairPerf{Latency: 0.020, Bandwidth: 1.94e7} // 155 Mbit/s
	if err := sys.AddNetwork("ethernet", eth); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddNetwork("atm", atm); err != nil {
		log.Fatal(err)
	}
	small, err := sys.Matrix(hetsched.UniformSizes(4, 1<<10), hetsched.UsePBPS)
	if err != nil {
		log.Fatal(err)
	}
	static, err := sys.Matrix(hetsched.UniformSizes(4, 1<<10), hetsched.SingleFastest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 kB transfer: pbps %.4fs, static-atm %.4fs\n", small.At(0, 1), static.At(0, 1))
	// Output:
	// 1 kB transfer: pbps 0.0018s, static-atm 0.0201s
}

// ExampleSolveExact certifies the running example's optimum.
func ExampleSolveExact() {
	res, err := hetsched.SolveExact(hetsched.ExampleMatrix(), hetsched.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan: %g (proved: %v)\n", res.Makespan, res.Optimal)
	// Output:
	// optimal makespan: 11 (proved: true)
}
