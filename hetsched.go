// Package hetsched is an adaptive communication scheduling library for
// distributed heterogeneous systems, reproducing Bhat, Prasanna &
// Raghavendra, "Adaptive Communication Algorithms for Distributed
// Heterogeneous Systems" (HPDC 1998).
//
// The library builds communication schedules for collective patterns —
// above all total exchange (all-to-all personalized communication) —
// over networks whose pairwise latency and bandwidth differ and drift,
// as in metacomputing systems. Its four framework components mirror
// the paper's:
//
//   - a directory service supplying current pairwise performance
//     (package internal/directory, re-exported here);
//   - an analytical communication model, Tij + m/Bij (internal/model);
//   - timing diagrams representing schedules (internal/timing);
//   - scheduling algorithms placing events to minimize completion time
//     (internal/sched): the homogeneous caterpillar baseline, maximum-
//     and minimum-weight matching decompositions, a greedy O(P³)
//     approximation, and the open shop heuristic with its 2·t_lb
//     guarantee.
//
// A discrete-event simulator (internal/sim) executes schedules under
// the base model with FIFO receive arbitration, under the Section 6.1
// enhancements (interleaved receives with overhead α, finite receive
// buffers), and with Section 6.3 checkpoint rescheduling against
// drifting networks. Extensions cover QoS deadline scheduling,
// critical-resource scheduling, incremental schedule repair, and other
// collectives (broadcast, scatter/gather, all-gather).
//
// # Quick start
//
//	perf := hetsched.Gusto()                        // Table 1 & 2 data
//	m, _ := hetsched.BuildUniform(perf, 1<<20)      // 1 MB messages
//	res, _ := hetsched.OpenShop().Schedule(m)       // near-optimal schedule
//	fmt.Println(res.CompletionTime(), res.Ratio())  // vs. lower bound
//	fmt.Print(hetsched.RenderASCII(res.Schedule, hetsched.RenderOptions{}))
//
// See the examples directory for runnable programs and DESIGN.md for
// the experiment index.
package hetsched

import (
	"math/rand"

	"hetsched/internal/calib"
	"hetsched/internal/collective"
	"hetsched/internal/comm"
	"hetsched/internal/directory"
	"hetsched/internal/exact"
	"hetsched/internal/exec"
	"hetsched/internal/faults"
	"hetsched/internal/incremental"
	"hetsched/internal/indirect"
	"hetsched/internal/model"
	"hetsched/internal/multinet"
	"hetsched/internal/netmodel"
	"hetsched/internal/obs"
	"hetsched/internal/optimize"
	"hetsched/internal/qos"
	"hetsched/internal/sched"
	"hetsched/internal/serve"
	"hetsched/internal/sim"
	"hetsched/internal/staging"
	"hetsched/internal/timing"
	"hetsched/internal/trace"
	"hetsched/internal/workload"
)

// Network model types.
type (
	// PairPerf is the latency/bandwidth of one ordered processor pair.
	PairPerf = netmodel.PairPerf
	// Perf is a dense table of pairwise network performance.
	Perf = netmodel.Perf
	// Topology is a multi-site network with routed paths.
	Topology = netmodel.Topology
	// Site is one location in a Topology.
	Site = netmodel.Site
	// Link is a network segment in a Topology.
	Link = netmodel.Link
	// GenConfig controls random performance generation.
	GenConfig = netmodel.GenConfig
	// Drift parameterizes the bounded bandwidth random walk.
	Drift = netmodel.Drift
)

// Communication model types.
type (
	// Matrix is a P×P communication-time matrix, C[i][j] = time i→j.
	Matrix = model.Matrix
	// Sizes is a P×P message-size matrix in bytes.
	Sizes = model.Sizes
)

// Timing-diagram types.
type (
	// Event is one communication occupying [Start, Finish).
	Event = timing.Event
	// Schedule is a timed communication schedule.
	Schedule = timing.Schedule
	// StepSchedule is a schedule organized as contention-free steps.
	StepSchedule = timing.StepSchedule
	// Pair is an unscheduled (sender, receiver) communication.
	Pair = timing.Pair
	// RenderOptions controls ASCII timing-diagram rendering.
	RenderOptions = timing.RenderOptions
)

// Scheduler types.
type (
	// Scheduler produces a total-exchange schedule from a Matrix.
	Scheduler = sched.Scheduler
	// Result is a scheduler's output with its lower bound.
	Result = sched.Result
)

// Directory service types.
type (
	// DirectoryStore is the in-memory performance directory.
	DirectoryStore = directory.Store
	// DirectoryServer exposes a store over TCP.
	DirectoryServer = directory.Server
	// DirectoryClient queries a directory server.
	DirectoryClient = directory.Client
	// Feeder publishes synthetic load drift into a store.
	Feeder = directory.Feeder
	// ResilientDirectoryClient retries, reconnects, and serves stale
	// snapshots when the server is unreachable.
	ResilientDirectoryClient = directory.ResilientClient
	// ResilientConfig tunes a ResilientDirectoryClient.
	ResilientConfig = directory.ResilientConfig
	// SnapshotMeta reports a snapshot's version and staleness.
	SnapshotMeta = directory.SnapshotMeta
	// ResilientCounters counts retries, reconnects, and stale serves.
	ResilientCounters = directory.ResilientCounters
)

// NewResilientClient creates a fault-tolerant directory client.
var NewResilientClient = directory.NewResilientClient

// Directory failure sentinels, testable with errors.Is.
var (
	// ErrDirectoryBroken marks a client whose connection died; call
	// Reconnect (ResilientDirectoryClient does so automatically).
	ErrDirectoryBroken = directory.ErrBroken
	// ErrDirectoryUnavailable wraps transport-level failures.
	ErrDirectoryUnavailable = directory.ErrUnavailable
)

// Simulator types.
type (
	// Plan is a per-sender send ordering executed by the simulator.
	Plan = sim.Plan
	// ExecResult is one simulated execution.
	ExecResult = sim.ExecResult
	// Network supplies transfer durations, possibly time-varying.
	Network = sim.Network
	// Epoch is one segment of a piecewise-constant network.
	Epoch = sim.Epoch
)

// GUSTO testbed data (Tables 1 and 2 of the paper).
var (
	// Gusto returns the 5-site GUSTO performance table.
	Gusto = netmodel.Gusto
	// GustoSites names the five GUSTO sites.
	GustoSites = netmodel.GustoSites
	// GustoGuided is the paper's random-generation configuration.
	GustoGuided = netmodel.GustoGuided
)

// RandomPerf draws a random pairwise performance table.
func RandomPerf(rng *rand.Rand, n int, cfg GenConfig) *Perf {
	return netmodel.RandomPerf(rng, n, cfg)
}

// NewTopology builds a multi-site topology; add backbone links with
// Topology.ConnectSites.
func NewTopology(sites []Site) *Topology { return netmodel.NewTopology(sites) }

// ExampleTopology returns the three-site system of the paper's
// Figure 1 with the given hosts per site.
var ExampleTopology = netmodel.ExampleTopology

// NewWalker starts a bounded bandwidth random walk over a base table.
var NewWalker = netmodel.NewWalker

// DefaultDrift is a moderate synthetic load model (±10% per step).
var DefaultDrift = netmodel.DefaultDrift

// LoadProfile maps (src, dst, time) to a bandwidth multiplier.
type LoadProfile = netmodel.Profile

// DiurnalProfile returns a day/night sinusoidal load curve.
var DiurnalProfile = netmodel.DiurnalProfile

// SampleProfile applies a load profile to a base table at one time.
var SampleProfile = netmodel.SampleProfile

// ProfileSeries samples a profile at increasing times, one table each.
var ProfileSeries = netmodel.ProfileSeries

// Build constructs the communication matrix from performance and sizes.
func Build(perf *Perf, sizes *Sizes) (*Matrix, error) { return model.Build(perf, sizes) }

// BuildUniform is Build with every message the same size.
func BuildUniform(perf *Perf, size int64) (*Matrix, error) { return model.BuildUniform(perf, size) }

// UniformSizes returns a size matrix with one size everywhere.
func UniformSizes(n int, size int64) *Sizes { return model.UniformSizes(n, size) }

// ExampleMatrix returns the 5-processor running-example matrix.
func ExampleMatrix() *Matrix { return model.ExampleMatrix() }

// ParseMatrix reads a matrix in the text format.
var ParseMatrix = model.ParseString

// FormatMatrix renders a matrix in the text format.
var FormatMatrix = model.FormatString

// Schedulers returns one instance of every total-exchange scheduler.
func Schedulers() []Scheduler { return sched.All() }

// SchedulerByName looks a scheduler up by its Name.
func SchedulerByName(name string) (Scheduler, error) { return sched.ByName(name) }

// Baseline returns the caterpillar baseline scheduler.
func Baseline() Scheduler { return sched.Baseline{} }

// BaselineBarrier returns the lockstep caterpillar scheduler.
func BaselineBarrier() Scheduler { return sched.BaselineBarrier{} }

// MaxMatching returns the maximum-weight matching scheduler.
func MaxMatching() Scheduler { return sched.MaxMatching{} }

// MinMatching returns the minimum-weight matching scheduler.
func MinMatching() Scheduler { return sched.MinMatching{} }

// Greedy returns the O(P³) greedy scheduler with fairness rotation.
func Greedy() Scheduler { return sched.NewGreedy() }

// OpenShop returns the open shop heuristic scheduler (2·t_lb bound).
func OpenShop() Scheduler { return sched.NewOpenShop() }

// MultiStartOpenShop returns a best-of-8 open shop scheduler with
// randomized tie-breaking, never worse than the deterministic one.
func MultiStartOpenShop(seed int64) Scheduler { return sched.NewMultiStartOpenShop(seed) }

// Compare runs every scheduler on the matrix.
func Compare(m *Matrix) ([]*Result, error) { return sched.Compare(m) }

// FormatComparison renders Compare results as a table.
var FormatComparison = sched.FormatComparison

// RenderASCII draws a schedule as a textual timing diagram.
var RenderASCII = timing.RenderASCII

// CriticalLink is one hop of a schedule's critical dependence chain.
type CriticalLink = timing.CriticalLink

// CriticalPath returns the longest tight dependence chain explaining a
// schedule's completion time.
var CriticalPath = timing.CriticalPath

// FormatCriticalPath renders a critical path one event per line.
var FormatCriticalPath = timing.FormatCriticalPath

// Utilization reports per-processor send/receive port busy fractions.
var Utilization = timing.Utilization

// BottleneckProcessor returns the busiest processor and its utilization.
var BottleneckProcessor = timing.BottleneckProcessor

// Multi-network point-to-point techniques (PBPS and aggregation, from
// the related work the paper builds on).
type (
	// MultiNetSystem is a system whose host pairs share several networks.
	MultiNetSystem = multinet.System
	// MultiNetTechnique selects PBPS, aggregation, or the static baseline.
	MultiNetTechnique = multinet.Technique
)

// Multi-network techniques.
const (
	SingleFastest  = multinet.SingleFastest
	UsePBPS        = multinet.UsePBPS
	UseAggregation = multinet.UseAggregation
)

// NewMultiNetSystem creates an n-host multi-network system.
var NewMultiNetSystem = multinet.NewSystem

// SVGOptions controls RenderSVG.
type SVGOptions = timing.SVGOptions

// RenderSVG writes a schedule as a standalone SVG timing diagram.
var RenderSVG = timing.RenderSVG

// MarshalPerf encodes a performance table (and optional names) as JSON.
var MarshalPerf = netmodel.MarshalPerf

// UnmarshalPerf decodes a table written by MarshalPerf.
var UnmarshalPerf = netmodel.UnmarshalPerf

// Partial (all-to-some) patterns: the paper's data-staging-style
// subsets of the full exchange.
type PartialPattern = sched.Pattern

// PatternLowerBound is t_lb restricted to a pattern.
var PatternLowerBound = sched.PatternLowerBound

// TotalExchangePattern returns the full all-to-all pattern.
var TotalExchangePattern = sched.TotalExchangePattern

// PartialOpenShop schedules an arbitrary pattern with the open shop
// heuristic (within 2× the pattern lower bound).
var PartialOpenShop = sched.PartialOpenShop

// PartialMatching schedules an arbitrary pattern by extremal-matching
// decomposition.
var PartialMatching = sched.PartialMatching

// PartialGreedy schedules an arbitrary pattern with the greedy lists.
var PartialGreedy = sched.PartialGreedy

// NewDirectory creates an in-memory directory store.
func NewDirectory(initial *Perf, names []string) (*DirectoryStore, error) {
	return directory.NewStore(initial, names)
}

// NewDirectoryServer wraps a store in a TCP server.
func NewDirectoryServer(store *DirectoryStore) *DirectoryServer { return directory.NewServer(store) }

// DialDirectory connects to a directory server.
var DialDirectory = directory.Dial

// PlanFromSchedule extracts a simulator plan from a schedule.
func PlanFromSchedule(s *Schedule, sizes *Sizes) (*Plan, error) {
	return sim.PlanFromSchedule(s, sizes)
}

// Simulate executes a plan on a static network under the base model.
func Simulate(perf *Perf, plan *Plan) (*ExecResult, error) {
	return sim.Run(sim.NewStatic(perf), plan)
}

// NewStaticNetwork wraps a performance table as a time-invariant
// simulator network.
func NewStaticNetwork(perf *Perf) Network { return sim.NewStatic(perf) }

// NewPiecewiseNetwork builds a network whose performance changes at
// fixed times.
var NewPiecewiseNetwork = sim.NewPiecewise

// SimulateOn executes a plan on any simulator network.
func SimulateOn(net Network, plan *Plan) (*ExecResult, error) { return sim.Run(net, plan) }

// SimulateInterleaved executes a plan under the Section 6.1
// interleaved-receive model with context-switch overhead alpha.
func SimulateInterleaved(net Network, plan *Plan, alpha float64) (*ExecResult, error) {
	return sim.RunInterleaved(net, plan, alpha)
}

// SimulateBuffered executes a plan under the Section 6.1 finite
// receive-buffer model.
func SimulateBuffered(net Network, plan *Plan, capacity int) (*ExecResult, error) {
	return sim.RunBuffered(net, plan, capacity)
}

// Checkpoint rescheduling (Section 6.3).
type (
	// CheckpointPolicy decides the dispatch budget between checkpoints.
	CheckpointPolicy = sim.CheckpointPolicy
	// Replanner reorders the remaining sends at a checkpoint.
	Replanner = sim.Replanner
	// CheckpointResult reports a checkpointed execution.
	CheckpointResult = sim.CheckpointResult
	// NoCheckpoints runs the plan in one phase.
	NoCheckpoints = sim.NoCheckpoints
	// EveryEvents checkpoints after each batch of K transfers.
	EveryEvents = sim.EveryEvents
	// Halving checkpoints after half of the remaining events.
	Halving = sim.Halving
)

// KeepOrder is the identity replanner.
var KeepOrder = sim.KeepOrder

// ReplanOpenShop reschedules the tail with the open shop heuristic.
var ReplanOpenShop = sim.ReplanOpenShop

// SimulateCheckpointed executes a plan with checkpoint rescheduling.
var SimulateCheckpointed = sim.RunCheckpointed

// ReactiveResult reports a fault-reactive checkpointed execution.
type ReactiveResult = sim.ReactiveResult

// SimulateReactive executes a plan with checkpoint rescheduling that
// re-plans only when a known fault time falls inside the window just
// executed (mid-run link degradation or failure).
var SimulateReactive = sim.RunReactive

// Recording is a replayable time series of network conditions.
type Recording = trace.Recording

// NewRecording creates an empty recording.
var NewRecording = trace.New

// RecordWalker samples a bandwidth random walk into a recording.
var RecordWalker = trace.RecordWalker

// RecordProfile samples a load profile into a recording.
var RecordProfile = trace.RecordProfile

// Workload generation (the paper's evaluation patterns).
type (
	// WorkloadKind selects a message-size pattern.
	WorkloadKind = workload.Kind
	// WorkloadSpec parameterizes generation.
	WorkloadSpec = workload.Spec
)

// Workload kinds, matching Figures 9-12.
const (
	WorkloadSmall   = workload.Small
	WorkloadLarge   = workload.Large
	WorkloadMixed   = workload.Mixed
	WorkloadServers = workload.Servers
)

// DefaultWorkload returns the paper's parameters for a kind and size.
var DefaultWorkload = workload.DefaultSpec

// WorkloadSizes generates a size matrix for a spec.
var WorkloadSizes = workload.Sizes

// TransposeSizes returns the matrix-transpose redistribution workload.
var TransposeSizes = workload.Transpose

// QoS extension (Section 6.4).
type (
	// QoSMessage is a communication with deadline and priority.
	QoSMessage = qos.Message
	// QoSProblem is a deadline-constrained message set.
	QoSProblem = qos.Problem
	// QoSResult is a QoS schedule with metrics.
	QoSResult = qos.Result
)

// ScheduleQoS sequences messages under a policy (qos.EDF or
// qos.MakespanOnly re-exported below).
var ScheduleQoS = qos.Schedule

// QoS policies.
const (
	EDF          = qos.EDF
	MakespanOnly = qos.MakespanOnly
)

// ScheduleCritical builds a schedule releasing one processor earliest.
var ScheduleCritical = qos.ScheduleCritical

// RefineSchedule incrementally repairs a step schedule after partial
// cost changes (Section 6.2).
var RefineSchedule = incremental.Refine

// Exact solving for small instances (the problem is NP-complete,
// Theorem 1).
type (
	// ExactOptions tunes the branch-and-bound search.
	ExactOptions = exact.Options
	// ExactResult is the solver's output.
	ExactResult = exact.Result
)

// SolveExact finds a minimum-makespan schedule by branch and bound;
// practical for P ≤ 5.
var SolveExact = exact.Solve

// Local-search post-optimization of step schedules.
type (
	// OptimizeOptions tunes the hill climber.
	OptimizeOptions = optimize.Options
	// OptimizeStats reports the search outcome.
	OptimizeStats = optimize.Stats
)

// ImproveSchedule hill-climbs a step schedule (relocations, exchanges,
// rectangle swaps) under the asynchronous evaluation.
var ImproveSchedule = optimize.Improve

// RedistributionSizes returns the message sizes of a block-cyclic
// cyclic(r) → cyclic(s) array redistribution (the paper's motivating
// reference [19]).
var RedistributionSizes = workload.Redistribution

// RefineOptions tunes RefineSchedule.
type RefineOptions = incremental.Options

// DefaultRefineOptions returns a 10% threshold with max matching.
var DefaultRefineOptions = incremental.DefaultOptions

// Data staging (the BADD problem of Sections 2 and 6.4).
type (
	// StagingItem is a data item with its size and source machines.
	StagingItem = staging.Item
	// StagingRequest asks for an item at a destination by a deadline.
	StagingRequest = staging.Request
	// StagingProblem is a data staging instance.
	StagingProblem = staging.Problem
	// StagingResult is a staged delivery schedule.
	StagingResult = staging.Result
	// StagingPolicy selects staged relaying or direct-only shipping.
	StagingPolicy = staging.Policy
)

// Staging policies.
const (
	StagedDelivery = staging.Staged
	DirectDelivery = staging.DirectOnly
)

// ScheduleStaging satisfies data requests with the multiple-source
// shortest-path heuristic.
var ScheduleStaging = staging.Schedule

// Broadcast and friends: framework generality beyond total exchange.
var (
	// Broadcast schedules a heterogeneity-aware one-to-all broadcast.
	Broadcast = collective.Broadcast
	// Scatter schedules the root's personalized sends.
	Scatter = collective.Scatter
	// Gather schedules everyone's send to the root.
	Gather = collective.Gather
	// AllGather schedules an all-to-all broadcast via total exchange.
	AllGather = collective.AllGather
	// Reduce schedules an all-to-one reduction (combining trees).
	Reduce = collective.Reduce
	// AllReduce schedules a reduction followed by a broadcast.
	AllReduce = collective.AllReduce
	// PipelinedBroadcast streams a large message down the broadcast
	// tree in segments.
	PipelinedBroadcast = collective.PipelinedBroadcast
)

// BruckResult reports a combine-and-forward total exchange.
type BruckResult = indirect.Result

// Bruck schedules a log-round combine-and-forward total exchange —
// the indirect alternative the paper's Section 3.4 rejects for
// voluminous data (see EXPERIMENTS.md X12 for when each side wins).
var Bruck = indirect.Bruck

// Application-level communicator (plans collectives from directory
// snapshots and repairs repeated exchanges incrementally).
type (
	// Communicator plans network-aware collective communication.
	Communicator = comm.Communicator
	// CommConfig tunes a Communicator.
	CommConfig = comm.Config
	// CommSource supplies current network performance.
	CommSource = comm.Source
	// CommHealth reports which rung of the fallback ladder a
	// Communicator is planning from.
	CommHealth = comm.Health
	// CommStats counts a Communicator's planning activity, including
	// fresh/stale/degraded serves.
	CommStats = comm.Stats
)

// Fallback-ladder health states.
const (
	// CommHealthOK: planning from fresh directory data.
	CommHealthOK = comm.HealthOK
	// CommHealthStale: directory unreachable, planning from a cached
	// table within the staleness bound.
	CommHealthStale = comm.HealthStale
	// CommHealthDegraded: no usable table, planning with the uniform
	// caterpillar baseline.
	CommHealthDegraded = comm.HealthDegraded
)

// NewCommunicator creates a communicator over a performance source.
var NewCommunicator = comm.New

// StaticCommSource wraps a fixed table as a CommSource.
var StaticCommSource = comm.StaticSource

// Fault injection (chaos testing of the directory, the communicator,
// and the simulator).
type (
	// LinkEvent degrades (or fails, Factor 0) one directed link mid-run.
	LinkEvent = faults.LinkEvent
	// ConnFaultConfig parameterizes connection-level fault injection.
	ConnFaultConfig = faults.ConnConfig
	// ConnFaultInjector wraps net.Conns with seeded drops, stalls, and
	// torn writes.
	ConnFaultInjector = faults.ConnInjector
)

// ErrInjected marks a deliberately injected fault.
var ErrInjected = faults.ErrInjected

// NewConnFaultInjector creates a deterministic connection-fault
// injector; install with DirectoryServer.SetConnWrapper.
var NewConnFaultInjector = faults.NewConnInjector

// WrapCommSource wraps a CommSource with seeded failures and frozen
// stale tables.
var WrapCommSource = faults.WrapSource

// NewFaultyNetwork builds a simulator network from a base table plus
// scripted link events; drive it with SimulateReactive.
var NewFaultyNetwork = faults.NewNetwork

// RandomLinkEvents draws seeded link degradations and failures on
// distinct links inside a time window.
var RandomLinkEvents = faults.RandomLinkEvents

// Data-plane execution (internal/exec): a schedule is not just a
// prediction — the executor moves real bytes over a transport in
// timing-diagram order under the port model, retries transient
// failures, and replans the residual among survivors when a node dies
// mid-exchange.
type (
	// ExecTransport moves bytes between nodes (in-memory pipes or TCP
	// loopback).
	ExecTransport = exec.Transport
	// ExecConfig tunes the data-plane executor.
	ExecConfig = exec.Config
	// Executor runs a planned exchange over a transport.
	Executor = exec.Executor
	// DeliveryReport accounts for every byte of one executed exchange.
	DeliveryReport = exec.DeliveryReport
	// DestReport is a DeliveryReport's per-destination accounting.
	DestReport = exec.DestReport
	// PeerDeadError marks a node declared (or injected) dead.
	PeerDeadError = exec.PeerDeadError
)

// Executor failure sentinels, testable with errors.Is.
var (
	// ErrPeerDead matches any PeerDeadError.
	ErrPeerDead = exec.ErrPeerDead
	// ErrExecTransportClosed marks a transport torn down mid-call.
	ErrExecTransportClosed = exec.ErrTransportClosed
)

// NewExecutor creates a data-plane executor over a transport.
var NewExecutor = exec.New

// NewMemTransport creates an in-memory pipe transport for n nodes.
var NewMemTransport = exec.NewMem

// NewTCPTransport creates a TCP-loopback transport for n nodes.
var NewTCPTransport = exec.NewTCP

// ResidualPattern returns the survivor-to-survivor pairs still
// undelivered after a mid-exchange failure.
var ResidualPattern = sched.ResidualPattern

// ReplanResidual schedules a residual pattern on the
// survivor-restricted matrix.
var ReplanResidual = sched.ReplanResidual

// Seeded latency/stall injection for transport-level chaos tests.
type (
	// LatencyFaultConfig parameterizes seeded delay and stall injection.
	LatencyFaultConfig = faults.LatencyConfig
	// LatencyFaultInjector wraps net.Conns with seeded latency and
	// stalls; install with a transport's SetConnWrapper.
	LatencyFaultInjector = faults.LatencyInjector
)

// NewLatencyFaultInjector creates a deterministic latency injector.
var NewLatencyFaultInjector = faults.NewLatencyInjector

// Broadcast algorithms.
const (
	FastestNodeFirst  = collective.FastestNodeFirst
	LinearBroadcast   = collective.LinearBroadcast
	BinomialBroadcast = collective.BinomialBroadcast
)

// Telemetry (internal/obs): a zero-dependency metrics registry plus
// span tracing with Chrome trace_event export. Pass a registry/tracer
// through CommConfig.Metrics/Tracer or ResilientConfig.Metrics/Tracer to
// instrument planning and directory traffic; everything is a no-op
// when left nil.
type (
	// MetricsRegistry is a race-safe registry of counters, gauges, and
	// histograms with Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// MetricLabel is one name/value metric label.
	MetricLabel = obs.Label
	// Tracer records spans and instants and writes Chrome trace_event
	// JSON loadable in chrome://tracing and Perfetto.
	Tracer = obs.Tracer
	// Span is one in-flight traced operation.
	Span = obs.Span
	// TraceContext is the request-scoped trace/span identity carried
	// through context.Context across serve, comm, and exec.
	TraceContext = obs.TraceContext
	// ReqTrace is one request's recorded span tree.
	ReqTrace = obs.ReqTrace
	// FlightRecorder is the always-on fixed-size ring of recent
	// structured events, dumped to disk on faults or SIGQUIT.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent is one flight-recorder ring entry.
	FlightEvent = obs.FlightEvent
	// TailSampler retains span trees of interesting requests under a
	// fixed cap.
	TailSampler = obs.TailSampler
)

// NewMetricsRegistry creates an empty metrics registry.
var NewMetricsRegistry = obs.New

// DefaultMetrics returns the process-wide shared registry.
var DefaultMetrics = obs.Default

// DeclareStandardMetrics pre-declares every hetsched_* metric family in
// a registry so scrapers see the full schema before traffic arrives.
var DeclareStandardMetrics = obs.DeclareStandard

// NewTracer creates a tracer; nil selects the wall clock.
var NewTracer = obs.NewTracer

// MetricLabelValue builds one metric label.
var MetricLabelValue = obs.L

// TraceSchedule renders a schedule onto a tracer as one track per
// sender with one slice per message — the paper's timing diagrams as a
// Perfetto-loadable trace.
var TraceSchedule = obs.TraceSchedule

// ServeMetrics exposes /metrics (Prometheus text), /debug/vars, and
// /debug/pprof for a registry on addr in the background; it returns
// the bound address and a shutdown function.
var ServeMetrics = obs.Serve

// MetricsHandler returns the telemetry HTTP handler for embedding in
// an existing server.
var MetricsHandler = obs.Handler

// NewTraceID draws a process-unique request trace ID (never zero).
var NewTraceID = obs.NewTraceID

// WithTrace binds a TraceContext to a context; TraceFrom reads it back
// (zero value when absent).
var (
	WithTrace = obs.WithTrace
	TraceFrom = obs.TraceFrom
)

// FormatTraceID and ParseTraceID convert trace IDs to and from their
// 16-hex-digit wire form.
var (
	FormatTraceID = obs.FormatTraceID
	ParseTraceID  = obs.ParseTraceID
)

// NewFlightRecorder creates a flight recorder with the given ring size
// (<=0 selects 1024); NewTailSampler creates a tail sampler with the
// given retention cap (<=0 selects 256). Wire them through
// CommConfig.Flight and PlanDaemonConfig.Flight/Tail.
var (
	NewFlightRecorder = obs.NewFlightRecorder
	NewTailSampler    = obs.NewTailSampler
)

// SetSimTelemetry wires checkpoint/replan counters and trace instants
// into the simulator's execution loops (process-wide; pass nil, nil to
// disable).
var SetSimTelemetry = sim.SetTelemetry

// Planning as a service (internal/serve): a daemon that answers plan
// requests over the JSON-line protocol with admission control and
// backpressure (bounded queue, deadline propagation, shed with
// retry-after), request coalescing behind a generation-versioned plan
// cache, and graceful degradation riding the communicator's
// fresh→stale→degraded ladder. Overload is always explicit: every
// request the daemon reads gets a served, shed, expired, or draining
// answer — never a silent drop. Command hetpland wraps this; hcload
// storms it.
type (
	// PlanDaemon admits, coalesces, plans, and sheds plan requests.
	PlanDaemon = serve.Daemon
	// PlanDaemonConfig tunes admission control and degradation.
	PlanDaemonConfig = serve.Config
	// PlanServer serves a PlanDaemon over TCP.
	PlanServer = serve.Server
	// PlanServerConfig tunes connection handling and drain behavior.
	PlanServerConfig = serve.ServerConfig
	// PlanClient is a plan-service client connection.
	PlanClient = serve.Client
	// PlanGenFunc reports the directory generation for cache
	// invalidation.
	PlanGenFunc = serve.GenFunc
	// PlanRequest is one plan-service request (wire format).
	PlanRequest = directory.PlanRequest
	// PlanResponse is one plan-service response (wire format).
	PlanResponse = directory.PlanResponse
	// PlanServeStats counts a daemon's serving outcomes.
	PlanServeStats = directory.ServeStats
)

// NewPlanDaemon creates a planning daemon over a communicator.
var NewPlanDaemon = serve.NewDaemon

// NewPlanServer wraps a daemon as a TCP JSON-line service.
var NewPlanServer = serve.NewServer

// DialPlanService connects a PlanClient to a running daemon.
var DialPlanService = serve.Dial

// Slow-consumer fault injection: a peer that reads at a trickle, the
// overload case only write deadlines defend against.
type (
	// SlowClientConfig shapes the trickle (chunk size, pause,
	// direction).
	SlowClientConfig = faults.SlowClientConfig
	// SlowClientInjector wraps net.Conns so they trickle without ever
	// failing.
	SlowClientInjector = faults.SlowClientInjector
)

// NewSlowClientInjector creates a slow-consumer injector; install with
// PlanServerConfig.WrapConn or DirectoryServer.SetConnWrapper.
var NewSlowClientInjector = faults.NewSlowClientInjector

// Closed-loop network calibration: an online estimator that turns the
// executor's measured transfer timings into trusted per-pair
// (latency, bandwidth) estimates, with outlier rejection and
// confidence so planning distrusts cold or contradictory pairs and
// falls back to the static directory table. Install via
// CommConfig.Calibrator; see DESIGN.md §14.
type (
	// Calibrator fits per-pair network estimates from measured
	// transfers.
	Calibrator = calib.Calibrator
	// CalibConfig tunes the fit, the rejection gauntlet, and trust.
	CalibConfig = calib.Config
	// CalibSample is one measured transfer (the executor emits these
	// through ExecConfig.Samples).
	CalibSample = calib.Sample
	// CalibUpdate is one trusted per-pair estimate ready to push to
	// the directory.
	CalibUpdate = calib.Update
	// CalibBatchReport tallies one ObserveBatch call.
	CalibBatchReport = calib.BatchReport
	// CalibPairEstimate is one pair's fitted state and confidence.
	CalibPairEstimate = calib.PairEstimate
	// CalibSummary snapshots the whole calibrator for /statusz.
	CalibSummary = calib.Summary
)

// NewCalibrator creates a calibrator anchored on a static table.
var NewCalibrator = calib.New

// Seeded network-drift fault injection for calibration chaos tests:
// a virtual-time schedule of step/ramp/flap events over the true
// pairwise performance, and a conn wrapper imposing the drifted
// timings on real transfers.
type (
	// NetworkDrifter evolves the true network along a seeded schedule.
	NetworkDrifter = faults.Drifter
	// DriftEvent is one step, ramp, or flap on one pair.
	DriftEvent = faults.DriftEvent
	// PairDelayConfig shapes the per-pair delay injector.
	PairDelayConfig = faults.PairDelayConfig
	// PairDelayInjector wraps conns so transfers take the drifted
	// network's time.
	PairDelayInjector = faults.PairDelayInjector
)

// NewNetworkDrifter creates a drift schedule over a base table.
var NewNetworkDrifter = faults.NewDrifter

// NewPairDelayInjector creates a conn wrapper that imposes per-pair
// latency and bandwidth on real transfers.
var NewPairDelayInjector = faults.NewPairDelayInjector
