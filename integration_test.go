package hetsched

// Integration tests: whole-pipeline flows across module boundaries,
// the way the paper's Figure 2 wires the components together —
// directory service → communication model → scheduling algorithm →
// (simulated) execution → adaptation.

import (
	"math/rand"
	"testing"
	"time"

	"hetsched/internal/directory"
	"hetsched/internal/netmodel"
)

// TestPipelineDirectoryToExecution runs the full loop over a live TCP
// directory: snapshot, build, schedule, execute, verify against the
// lower bound; then the network shifts, the directory is re-queried,
// and a new schedule adapts.
func TestPipelineDirectoryToExecution(t *testing.T) {
	store, err := NewDirectory(Gusto(), GustoSites)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewDirectoryServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialDirectory(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	schedule := func() (*Result, *Perf) {
		perf, _, _, err := cl.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		m, err := BuildUniform(perf, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := OpenShop().Schedule(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.ValidateTotalExchange(m); err != nil {
			t.Fatal(err)
		}
		return res, perf
	}

	res1, perf1 := schedule()
	plan, err := PlanFromSchedule(res1.Schedule, UniformSizes(5, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := Simulate(perf1, plan)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Finish < res1.LowerBound-1e-9 {
		t.Error("execution beat the lower bound")
	}

	// Load shift: one link collapses. The next snapshot must produce a
	// different schedule with a larger bound.
	slow := perf1.At(0, 3)
	slow.Bandwidth /= 100
	if _, err := cl.UpdatePair(0, 3, slow); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.UpdatePair(3, 0, slow); err != nil {
		t.Fatal(err)
	}
	res2, _ := schedule()
	if res2.LowerBound <= res1.LowerBound {
		t.Errorf("collapsed link should raise the bound: %g vs %g", res2.LowerBound, res1.LowerBound)
	}
	// The adaptive schedule still tracks its (new) bound within
	// Theorem 3's guarantee.
	if res2.Ratio() > 2+1e-9 {
		t.Errorf("post-shift ratio %g exceeds Theorem 3", res2.Ratio())
	}
}

// TestPipelineFeederDrivesAdaptation publishes drift through a feeder
// and verifies schedules keep tracking the moving lower bound.
func TestPipelineFeederDrivesAdaptation(t *testing.T) {
	store, err := NewDirectory(Gusto(), nil)
	if err != nil {
		t.Fatal(err)
	}
	feeder := directory.NewFeeder(store, rand.New(rand.NewSource(11)), netmodel.Drift{
		RelStep: 0.4, MinFactor: 0.1, MaxFactor: 5,
	})
	for round := 0; round < 8; round++ {
		perf, _ := store.Snapshot()
		m, err := BuildUniform(perf, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := OpenShop().Schedule(m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ratio() > 2+1e-9 {
			t.Fatalf("round %d: ratio %g exceeds Theorem 3", round, res.Ratio())
		}
		if _, err := feeder.Tick(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelinePartialPatternStaging chains the all-to-some scheduler
// with the simulator: a staging-style pattern (few sources, many
// destinations) is scheduled and executed.
func TestPipelinePartialPatternStaging(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	perf := RandomPerf(rng, 12, GustoGuided())
	sizes := UniformSizes(12, 1<<20)
	m, err := Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	var pattern PartialPattern
	for src := 0; src < 2; src++ { // two repositories
		for dst := 2; dst < 12; dst++ {
			pattern = append(pattern, Pair{Src: src, Dst: dst})
		}
	}
	r, err := PartialOpenShop(m, pattern)
	if err != nil {
		t.Fatal(err)
	}
	lb := PatternLowerBound(m, pattern)
	if r.CompletionTime() > 2*lb*(1+1e-9) {
		t.Errorf("partial openshop ratio %g exceeds 2", r.CompletionTime()/lb)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := Simulate(perf, plan)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Finish < lb-1e-9 {
		t.Error("execution beat the pattern bound")
	}
	if len(exec.Schedule.Events) != len(pattern) {
		t.Error("execution lost events")
	}
}

// TestPipelineStagingOverGusto delivers data items across the GUSTO
// sites with relaying and checks port constraints hold end to end.
func TestPipelineStagingOverGusto(t *testing.T) {
	prob := &StagingProblem{
		N:    5,
		Perf: Gusto(),
		Items: []StagingItem{
			{Name: "terrain", Size: 4 << 20, Sources: []int{0}},
			{Name: "imagery", Size: 1 << 20, Sources: []int{3}},
		},
	}
	for dst := 0; dst < 5; dst++ {
		prob.Requests = append(prob.Requests,
			StagingRequest{Item: "terrain", Dst: dst, Deadline: 1e9},
			StagingRequest{Item: "imagery", Dst: dst, Deadline: 1e9},
		)
	}
	res, err := ScheduleStaging(prob, StagedDelivery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) != 10 {
		t.Fatalf("%d deliveries", len(res.Deliveries))
	}
	if err := res.Schedule.Validate(nil); err != nil {
		t.Fatalf("staging transfers violate port constraints: %v", err)
	}
}

// TestPipelineRefineAfterDirectoryUpdate exercises §6.2 end to end:
// schedule, directory reports changed links, repair, validate.
func TestPipelineRefineAfterDirectoryUpdate(t *testing.T) {
	store, err := NewDirectory(Gusto(), nil)
	if err != nil {
		t.Fatal(err)
	}
	perf, _ := store.Snapshot()
	old, err := BuildUniform(perf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := MaxMatching().Schedule(old)
	if err != nil {
		t.Fatal(err)
	}
	// One link slows 5×; the directory publishes it.
	pp := perf.At(1, 4)
	pp.Bandwidth /= 5
	if _, err := store.UpdatePair(1, 4, pp); err != nil {
		t.Fatal(err)
	}
	fresh, _ := store.Snapshot()
	cur, err := BuildUniform(fresh, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	repaired, stats, err := RefineSchedule(prev.Steps, old, cur, DefaultRefineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirtySteps != 1 {
		t.Errorf("one changed link should dirty one step, got %d", stats.DirtySteps)
	}
	s, err := repaired.Evaluate(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateTotalExchange(cur); err != nil {
		t.Fatal(err)
	}
}
