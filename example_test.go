package hetsched_test

import (
	"fmt"
	"log"

	"hetsched"
)

// Example schedules a total exchange of 1 MB messages over the GUSTO
// testbed with the open shop heuristic and reports its quality.
func Example() {
	perf := hetsched.Gusto()
	m, err := hetsched.BuildUniform(perf, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hetsched.OpenShop().Schedule(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events: %d\n", len(res.Schedule.Events))
	fmt.Printf("t_max:  %.3f s\n", res.CompletionTime())
	fmt.Printf("t_lb:   %.3f s\n", res.LowerBound)
	fmt.Printf("ratio:  %.3f\n", res.Ratio())
	// Output:
	// events: 20
	// t_max:  97.056 s
	// t_lb:   97.056 s
	// ratio:  1.000
}

// ExampleCompare runs every scheduler on the paper's running example.
func ExampleCompare() {
	results, err := hetsched.Compare(hetsched.ExampleMatrix())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-18s %4.1f\n", r.Algorithm, r.CompletionTime())
	}
	// Output:
	// baseline           12.0
	// baseline-barrier   15.0
	// maxmatch           11.0
	// minmatch           11.0
	// greedy             11.0
	// openshop           13.0
}

// ExampleBroadcast compares broadcast strategies from the slowest
// GUSTO site.
func ExampleBroadcast() {
	m, err := hetsched.BuildUniform(hetsched.Gusto(), 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fnf, err := hetsched.Broadcast(m, 2, hetsched.FastestNodeFirst)
	if err != nil {
		log.Fatal(err)
	}
	lin, err := hetsched.Broadcast(m, 2, hetsched.LinearBroadcast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fastest-node-first: %.1f s\n", fnf.CompletionTime())
	fmt.Printf("linear:             %.1f s\n", lin.CompletionTime())
	// Output:
	// fastest-node-first: 26.4 s
	// linear:             97.1 s
}

// ExamplePatternLowerBound shows partial (all-to-some) scheduling: two
// repository processors feed three clients.
func ExamplePatternLowerBound() {
	m, err := hetsched.BuildUniform(hetsched.Gusto(), 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	pattern := hetsched.PartialPattern{
		{Src: 0, Dst: 2}, {Src: 0, Dst: 4},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 3},
	}
	res, err := hetsched.PartialOpenShop(m, pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("events: %d, within 2x bound: %v\n",
		len(res.Schedule.Events),
		res.CompletionTime() <= 2*hetsched.PatternLowerBound(m, pattern))
	// Output:
	// events: 4, within 2x bound: true
}
