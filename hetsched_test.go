package hetsched

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// The facade tests exercise the public API end to end the way a
// downstream user would, without reaching into internal packages.

func TestQuickstartFlow(t *testing.T) {
	perf := Gusto()
	m, err := BuildUniform(perf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OpenShop().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime() <= 0 || res.Ratio() < 1-1e-9 || res.Ratio() > 2+1e-9 {
		t.Errorf("t=%g ratio=%g", res.CompletionTime(), res.Ratio())
	}
	if out := RenderASCII(res.Schedule, RenderOptions{Rows: 8}); !strings.Contains(out, "t_max") {
		t.Error("render missing completion")
	}
}

func TestSchedulerRegistry(t *testing.T) {
	if len(Schedulers()) != 6 {
		t.Errorf("Schedulers() = %d entries", len(Schedulers()))
	}
	for _, name := range []string{"baseline", "baseline-barrier", "maxmatch", "minmatch", "greedy", "openshop"} {
		s, err := SchedulerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	for _, s := range []Scheduler{Baseline(), BaselineBarrier(), MaxMatching(), MinMatching(), Greedy(), OpenShop()} {
		if s.Name() == "" {
			t.Error("constructor returned unnamed scheduler")
		}
	}
}

func TestCompareAndRender(t *testing.T) {
	results, err := Compare(ExampleMatrix())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparison(results)
	if !strings.Contains(out, "openshop") {
		t.Error("comparison missing openshop")
	}
}

func TestMatrixTextRoundTrip(t *testing.T) {
	m := ExampleMatrix()
	back, err := ParseMatrix(FormatMatrix(m))
	if err != nil {
		t.Fatal(err)
	}
	if back.At(1, 2) != m.At(1, 2) {
		t.Error("round trip lost data")
	}
}

func TestWorkloadsViaFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []WorkloadKind{WorkloadSmall, WorkloadLarge, WorkloadMixed, WorkloadServers} {
		sizes := WorkloadSizes(rng, DefaultWorkload(kind, 8))
		if sizes.N() != 8 {
			t.Fatalf("%v: wrong size", kind)
		}
	}
	tr, err := TransposeSizes(4, 8, 8, 8)
	if err != nil || tr.N() != 4 {
		t.Fatalf("transpose: %v", err)
	}
}

func TestSimulateViaFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	perf := RandomPerf(rng, 6, GustoGuided())
	sizes := UniformSizes(6, 1<<18)
	m, err := Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(res.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := Simulate(perf, plan)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Finish < m.LowerBound()-1e-9 {
		t.Error("simulated execution beats the lower bound")
	}
}

func TestDirectoryViaFacade(t *testing.T) {
	store, err := NewDirectory(Gusto(), GustoSites)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewDirectoryServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialDirectory(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	perf, names, _, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if perf.N() != 5 || names[4] != "NCSA" {
		t.Error("directory snapshot wrong")
	}
	// Schedule straight off a directory snapshot — the paper's loop.
	m, err := BuildUniform(perf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShop().Schedule(m); err != nil {
		t.Fatal(err)
	}
}

func TestQoSViaFacade(t *testing.T) {
	prob := &QoSProblem{N: 3, Messages: []QoSMessage{
		{Src: 0, Dst: 1, Duration: 1, Deadline: 10},
		{Src: 0, Dst: 2, Duration: 1, Deadline: 1.5},
	}}
	res, err := ScheduleQoS(prob, EDF)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics().Missed != 0 {
		t.Error("EDF missed an easy deadline")
	}
	if _, err := ScheduleQoS(prob, MakespanOnly); err != nil {
		t.Fatal(err)
	}
	cr, err := ScheduleCritical(ExampleMatrix(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if cr.CriticalDone <= 0 {
		t.Error("critical schedule empty")
	}
}

func TestRefineViaFacade(t *testing.T) {
	m := ExampleMatrix()
	res, err := MaxMatching().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	cur := m.Clone()
	cur.Set(0, 1, m.At(0, 1)*3)
	out, st, err := RefineSchedule(res.Steps, m, cur, DefaultRefineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtySteps == 0 || !out.CoversTotalExchange() {
		t.Errorf("refine stats %+v", st)
	}
}

func TestCollectivesViaFacade(t *testing.T) {
	m := ExampleMatrix()
	b, err := Broadcast(m, 0, FastestNodeFirst)
	if err != nil || len(b.Events) != 4 {
		t.Fatalf("broadcast: %v", err)
	}
	if _, err := Broadcast(m, 0, LinearBroadcast); err != nil {
		t.Fatal(err)
	}
	if _, err := Broadcast(m, 0, BinomialBroadcast); err != nil {
		t.Fatal(err)
	}
	if _, err := Scatter(m, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Gather(m, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := AllGather(Gusto(), []int64{1, 2, 3, 4, 5}, OpenShop()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSimulationVariants(t *testing.T) {
	topo := NewTopology([]Site{
		{Name: "A", Hosts: 2, LAN: Link{Name: "lanA", Latency: 0.001, Bandwidth: 1e7}},
		{Name: "B", Hosts: 2, LAN: Link{Name: "lanB", Latency: 0.001, Bandwidth: 1e7}},
	})
	topo.ConnectSites(0, 1, Link{Name: "wan", Latency: 0.01, Bandwidth: 1e6})
	perf, err := topo.Perf()
	if err != nil {
		t.Fatal(err)
	}
	sizes := UniformSizes(4, 1<<16)
	m, err := Build(perf, sizes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenShop().Schedule(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromSchedule(r.Schedule, sizes)
	if err != nil {
		t.Fatal(err)
	}
	net := NewStaticNetwork(perf)
	excl, err := SimulateOn(net, plan)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := SimulateInterleaved(net, plan, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := SimulateBuffered(net, plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	lb := m.LowerBound()
	for name, got := range map[string]float64{"exclusive": excl.Finish, "interleaved": inter.Finish, "buffered": buf.Finish} {
		if got < lb-1e-9 {
			t.Errorf("%s finish %g below lower bound %g", name, got, lb)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := map[string]func(){
		"bad walker drift": func() { NewWalker(rand.New(rand.NewSource(1)), Gusto(), Drift{RelStep: 2}) },
		"self backbone": func() {
			topo := NewTopology([]Site{{Name: "A", Hosts: 1, LAN: Link{Name: "l", Latency: 0.001, Bandwidth: 1e6}}})
			topo.ConnectSites(0, 0, Link{})
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
