// Command hetpland runs the planning-as-a-service daemon: a TCP
// server that answers total-exchange plan requests over the JSON-line
// protocol, with admission control, backpressure, request coalescing,
// a generation-versioned plan cache, and graceful degradation riding
// the communicator's fresh→stale→degraded ladder when the directory
// is unreachable. Overload is always explicit: requests the daemon
// cannot serve in time are shed or expired with retry-after hints,
// never silently dropped.
//
// Usage:
//
//	hetpland -addr 127.0.0.1:7575 -dir 127.0.0.1:7474     # plan against a live directory
//	hetpland -addr 127.0.0.1:7575 -gusto                  # plan against the static GUSTO tables
//	hetpland -gusto -workers 8 -queue 64 -deadline 500ms  # tune admission control
//	hetpland -gusto -metrics-addr 127.0.0.1:9091          # Prometheus /metrics + pprof
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetsched"
	"hetsched/internal/comm"
	"hetsched/internal/directory"
	"hetsched/internal/netmodel"
	"hetsched/internal/obs"
	"hetsched/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7575", "listen address")
		dir         = flag.String("dir", "", "directory service address (live mode)")
		gusto       = flag.Bool("gusto", false, "plan against the static GUSTO tables")
		random      = flag.Bool("random", false, "plan against a GUSTO-guided random table")
		p           = flag.Int("p", 10, "processors for -random")
		seed        = flag.Int64("seed", 1, "seed for -random")
		workers     = flag.Int("workers", 4, "planning workers (the in-flight budget)")
		queue       = flag.Int("queue", 64, "admission queue capacity; excess load is shed")
		deadline    = flag.Duration("deadline", time.Second, "default per-request budget when the client sends none")
		maxDeadline = flag.Duration("max-deadline", 10*time.Second, "cap on client-supplied budgets")
		genInterval = flag.Duration("gen-interval", 250*time.Millisecond, "min interval between directory generation probes")
		cacheCap    = flag.Int("cache", 256, "versioned plan cache capacity (entries)")
		drainGrace  = flag.Duration("drain-grace", 2*time.Second, "on SIGINT/SIGTERM, window for connected clients to read final answers")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "drop connections idle longer than this")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, /debug/vars, and /debug/pprof on this address (empty = disabled)")
	)
	flag.Parse()

	var (
		source comm.Source
		gen    serve.GenFunc
		n      int
	)
	switch {
	case *dir != "":
		rc := directory.NewResilientClient(*dir, directory.ResilientConfig{
			DialTimeout:    5 * time.Second,
			RequestTimeout: 5 * time.Second,
		})
		defer rc.Close()
		perf, _, meta, err := rc.Snapshot()
		if err != nil {
			fatal(fmt.Errorf("initial directory snapshot from %s: %w", *dir, err))
		}
		n = perf.N()
		// A strict source lets the communicator's own ladder observe
		// outages and tag responses honestly; the resilient client's
		// cache still backs the stale rung.
		source = rc.Source(true)
		gen = rc.Version
		fmt.Printf("hetpland: planning for %d processors against directory %s (version %d)\n",
			n, *dir, meta.Version)
	case *gusto:
		perf := hetsched.Gusto()
		n = perf.N()
		source = staticSource(perf)
		fmt.Printf("hetpland: planning for %d processors against the static GUSTO tables\n", n)
	case *random:
		perf := hetsched.RandomPerf(rand.New(rand.NewSource(*seed)), *p, hetsched.GustoGuided())
		n = perf.N()
		source = staticSource(perf)
		fmt.Printf("hetpland: planning for %d processors against a random table (seed %d)\n", n, *seed)
	default:
		fmt.Fprintln(os.Stderr, "hetpland: pick -dir ADDR, -gusto, or -random")
		os.Exit(1)
	}

	var reg *obs.Registry
	var stopMetrics func() error
	if *metricsAddr != "" {
		reg = obs.Default()
		obs.DeclareStandard(reg)
		mbound, stop, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		stopMetrics = stop
		fmt.Printf("hetpland: telemetry on http://%s/metrics (plus /debug/vars, /debug/pprof)\n", mbound)
	}

	c, err := comm.New(n, source, comm.Config{Metrics: reg})
	if err != nil {
		fatal(err)
	}
	daemon, err := serve.NewDaemon(c, gen, serve.Config{
		Workers:         *workers,
		Queue:           *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		GenInterval:     *genInterval,
		CacheCap:        *cacheCap,
		DrainTimeout:    *drainGrace,
		Metrics:         reg,
	})
	if err != nil {
		fatal(err)
	}
	srv := serve.NewServer(daemon, serve.ServerConfig{IdleTimeout: *idleTimeout})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hetpland: serving plans on %s (workers %d, queue %d)\n", bound, *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("hetpland: draining (grace %v)\n", *drainGrace)
	drainErr := srv.Drain(*drainGrace)
	st := daemon.Snapshot()
	fmt.Printf("hetpland: served %d, shed %d, expired %d, drained %d, coalesced %d, cache hits %d\n",
		st.Served, st.Shed, st.Expired, st.Drained, st.Coalesced, st.CacheHits)
	if stopMetrics != nil {
		if err := stopMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "hetpland: metrics:", err)
		}
	}
	if drainErr != nil {
		fatal(drainErr)
	}
	fmt.Println("hetpland: stopped")
}

// staticSource serves an immutable table: planning never fails, and
// health stays ok — the static analogue of a perfectly reliable
// directory.
func staticSource(perf *hetsched.Perf) comm.Source {
	return func() (*netmodel.Perf, error) { return perf.Clone(), nil }
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hetpland:", err)
	os.Exit(1)
}
