// Command hetpland runs the planning-as-a-service daemon: a TCP
// server that answers total-exchange plan requests over the JSON-line
// protocol, with admission control, backpressure, request coalescing,
// a generation-versioned plan cache, and graceful degradation riding
// the communicator's fresh→stale→degraded ladder when the directory
// is unreachable. Overload is always explicit: requests the daemon
// cannot serve in time are shed or expired with retry-after hints,
// never silently dropped.
//
// Usage:
//
//	hetpland -addr 127.0.0.1:7575 -dir 127.0.0.1:7474     # plan against a live directory
//	hetpland -addr 127.0.0.1:7575 -gusto                  # plan against the static GUSTO tables
//	hetpland -gusto -workers 8 -queue 64 -deadline 500ms  # tune admission control
//	hetpland -gusto -metrics-addr 127.0.0.1:9091          # Prometheus /metrics + pprof + /statusz
//	hetpland -gusto -metrics-addr :9091 -tail 256         # retain span trees of tail-latency requests
//	hetpland -dir 127.0.0.1:7474 -calibrate               # overlay calibrated estimates, push them back
//
// Observability: the flight recorder is always on (a fixed ring of
// recent structured events, near-zero idle cost) and dumps to disk on
// SIGQUIT, or automatically when the communicator's health ladder
// degrades. With -tail > 0 the daemon records a span tree per request
// and retains the interesting ones (errors, sheds, expiries, tail
// latency); /statusz shows live state and /statusz/traces exports the
// retained trees as Perfetto-loadable JSON.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetsched"
	"hetsched/internal/calib"
	"hetsched/internal/comm"
	"hetsched/internal/directory"
	"hetsched/internal/netmodel"
	"hetsched/internal/obs"
	"hetsched/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7575", "listen address")
		dir         = flag.String("dir", "", "directory service address (live mode)")
		gusto       = flag.Bool("gusto", false, "plan against the static GUSTO tables")
		random      = flag.Bool("random", false, "plan against a GUSTO-guided random table")
		p           = flag.Int("p", 10, "processors for -random")
		seed        = flag.Int64("seed", 1, "seed for -random")
		workers     = flag.Int("workers", 4, "planning workers (the in-flight budget)")
		queue       = flag.Int("queue", 64, "admission queue capacity; excess load is shed")
		deadline    = flag.Duration("deadline", time.Second, "default per-request budget when the client sends none")
		maxDeadline = flag.Duration("max-deadline", 10*time.Second, "cap on client-supplied budgets")
		genInterval = flag.Duration("gen-interval", 250*time.Millisecond, "min interval between directory generation probes")
		cacheCap    = flag.Int("cache", 256, "versioned plan cache capacity (entries)")
		drainGrace  = flag.Duration("drain-grace", 2*time.Second, "on SIGINT/SIGTERM, window for connected clients to read final answers")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "drop connections idle longer than this")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, /debug/vars, /debug/pprof, and /statusz on this address (empty = disabled)")
		flightSize  = flag.Int("flight-size", 1024, "flight recorder ring size in events (0 disables)")
		flightDump  = flag.String("flight-dump", "", "flight recorder dump path (empty = a file under the OS temp dir)")
		tailCap     = flag.Int("tail", 0, "retain up to this many span trees of interesting requests (0 disables per-request tracing)")
		tailAll     = flag.Bool("tail-all", false, "with -tail, retain every request's span tree, not just interesting ones")
		calibrate   = flag.Bool("calibrate", false, "arm a network calibrator: planning snapshots are overlaid with estimates it trusts, /statusz shows per-pair confidence, and with -dir trusted updates are pushed back to the directory")
	)
	flag.Parse()

	var (
		source comm.Source
		gen    serve.GenFunc
		n      int
		prior  *netmodel.Perf
		rc     *directory.ResilientClient
	)
	switch {
	case *dir != "":
		rc = directory.NewResilientClient(*dir, directory.ResilientConfig{
			DialTimeout:    5 * time.Second,
			RequestTimeout: 5 * time.Second,
		})
		defer rc.Close()
		perf, _, meta, err := rc.Snapshot()
		if err != nil {
			fatal(fmt.Errorf("initial directory snapshot from %s: %w", *dir, err))
		}
		n = perf.N()
		prior = perf
		// A strict source lets the communicator's own ladder observe
		// outages and tag responses honestly; the resilient client's
		// cache still backs the stale rung.
		source = rc.Source(true)
		gen = rc.Version
		fmt.Printf("hetpland: planning for %d processors against directory %s (version %d)\n",
			n, *dir, meta.Version)
	case *gusto:
		perf := hetsched.Gusto()
		n = perf.N()
		prior = perf
		source = staticSource(perf)
		fmt.Printf("hetpland: planning for %d processors against the static GUSTO tables\n", n)
	case *random:
		perf := hetsched.RandomPerf(rand.New(rand.NewSource(*seed)), *p, hetsched.GustoGuided())
		n = perf.N()
		prior = perf
		source = staticSource(perf)
		fmt.Printf("hetpland: planning for %d processors against a random table (seed %d)\n", n, *seed)
	default:
		fmt.Fprintln(os.Stderr, "hetpland: pick -dir ADDR, -gusto, or -random")
		os.Exit(1)
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.Default()
		obs.DeclareStandard(reg)
	}

	var flight *obs.FlightRecorder
	if *flightSize > 0 {
		flight = obs.NewFlightRecorder(*flightSize, nil).WithMetrics(reg)
		if *flightDump != "" {
			flight.SetDumpPath(*flightDump)
		}
	}
	var tail *obs.TailSampler
	if *tailCap > 0 {
		tail = obs.NewTailSampler(*tailCap)
	}

	ccfg := comm.Config{Metrics: reg, Flight: flight}
	var cal *calib.Calibrator
	if *calibrate {
		var err error
		if cal, err = calib.New(prior, calib.Config{Metrics: reg, Flight: flight}); err != nil {
			fatal(err)
		}
		ccfg.Calibrator = cal
		if rc != nil {
			// Close the loop: estimates the calibrator comes to trust
			// flow back to the directory every processor snapshots from.
			ccfg.CalibSink = directory.CalibrateSink(rc)
		}
		fmt.Println("hetpland: network calibration armed (per-pair confidence on /statusz)")
	}
	c, err := comm.New(n, source, ccfg)
	if err != nil {
		fatal(err)
	}
	daemon, err := serve.NewDaemon(c, gen, serve.Config{
		Workers:         *workers,
		Queue:           *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		GenInterval:     *genInterval,
		CacheCap:        *cacheCap,
		DrainTimeout:    *drainGrace,
		Metrics:         reg,
		Flight:          flight,
		Tail:            tail,
		TailAll:         *tailAll,
		Calib:           cal,
	})
	if err != nil {
		fatal(err)
	}

	var stopMetrics func() error
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(reg))
		mux.Handle("/statusz", daemon.StatuszHandler())
		mux.Handle("/statusz/traces", daemon.TracesHandler())
		mbound, stop, err := serveHTTP(*metricsAddr, mux)
		if err != nil {
			fatal(err)
		}
		stopMetrics = stop
		fmt.Printf("hetpland: telemetry on http://%s/metrics (plus /statusz, /debug/vars, /debug/pprof)\n", mbound)
	}

	srv := serve.NewServer(daemon, serve.ServerConfig{IdleTimeout: *idleTimeout})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hetpland: serving plans on %s (workers %d, queue %d)\n", bound, *workers, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	for s := range sig {
		if s != syscall.SIGQUIT {
			break
		}
		// SIGQUIT dumps the flight recorder and keeps serving — the
		// classic "what just happened" snapshot for a live daemon.
		if path, ok := flight.Trigger("SIGQUIT"); ok {
			fmt.Printf("hetpland: flight recorder dumped to %s\n", path)
		} else {
			fmt.Println("hetpland: flight recorder dump unavailable (disabled or rate-limited)")
		}
	}
	fmt.Printf("hetpland: draining (grace %v)\n", *drainGrace)
	drainErr := srv.Drain(*drainGrace)
	st := daemon.Snapshot()
	fmt.Printf("hetpland: served %d, shed %d, expired %d, drained %d, coalesced %d, cache hits %d\n",
		st.Served, st.Shed, st.Expired, st.Drained, st.Coalesced, st.CacheHits)
	if stopMetrics != nil {
		if err := stopMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "hetpland: metrics:", err)
		}
	}
	if drainErr != nil {
		fatal(drainErr)
	}
	fmt.Println("hetpland: stopped")
}

// serveHTTP exposes a handler on addr in the background, returning the
// bound address and a shutdown function — obs.Serve generalized to a
// caller-built mux so /statusz rides the same listener as /metrics.
func serveHTTP(addr string, h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

// staticSource serves an immutable table: planning never fails, and
// health stays ok — the static analogue of a perfectly reliable
// directory.
func staticSource(perf *hetsched.Perf) comm.Source {
	return func() (*netmodel.Perf, error) { return perf.Clone(), nil }
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hetpland:", err)
	os.Exit(1)
}
