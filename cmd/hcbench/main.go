// Command hcbench regenerates the paper's evaluation figures and the
// extension experiments as text tables (or CSV), exactly mapping the
// experiment index in DESIGN.md.
//
//	hcbench -fig 9          # Figure 9: small messages
//	hcbench -fig 10         # Figure 10: large messages
//	hcbench -fig 11         # Figure 11: mixed messages
//	hcbench -fig 12         # Figure 12: 20% servers
//	hcbench -fig example    # the running example (Figures 3-8)
//	hcbench -fig tight      # X1: Theorem 2 tightness family
//	hcbench -fig alpha      # X3: interleaved receives α sweep
//	hcbench -fig incr       # X4: incremental repair vs recompute
//	hcbench -fig ckpt       # X5: checkpoint rescheduling under drift
//	hcbench -fig qos        # X6: deadline scheduling
//	hcbench -fig critical   # X7: critical-resource scheduling
//	hcbench -fig all        # everything above
//	hcbench -fig sweeps -json out.json  # Figures 9-12 as machine-readable JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hetsched/internal/experiments"
	"hetsched/internal/workload"
)

// jsonFigure is one figure sweep in the -json report: the aggregate
// cells (mean and p95 ratio to the lower bound, mean completion,
// geometric-mean speedup) plus how the sweep itself ran — wall clock,
// schedules planned, and mean ns and allocs per planned schedule so
// engine-cost regressions show up next to the quality numbers. The
// quality cells stay deterministic; the engine-cost fields vary run to
// run like any timing does. EXPERIMENTS.md documents the schema.
type jsonFigure struct {
	Figure      string             `json:"figure"`
	Workload    string             `json:"workload"`
	Trials      int                `json:"trials"`
	Seed        int64              `json:"seed"`
	WallSeconds float64            `json:"wall_clock_seconds"`
	Schedules   int                `json:"schedules_planned"`
	MeanNsOp    float64            `json:"mean_ns_per_schedule"`
	AllocsOp    float64            `json:"allocs_per_schedule"`
	Cells       []experiments.Cell `json:"cells"`
}

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure/experiment to run (see -help)")
		trials  = flag.Int("trials", 5, "random instances per data point")
		seed    = flag.Int64("seed", 1998, "base random seed")
		pmax    = flag.Int("pmax", 50, "largest processor count for the figure sweeps")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables (figure sweeps only)")
		jsonOut = flag.String("json", "", "also write figure sweeps as JSON to this file")
		workers = flag.Int("workers", 0, "worker goroutines per experiment (0 = GOMAXPROCS, 1 = sequential); output is identical for any value")
		benchJS = flag.String("bench-json", "", "run the planning micro-benchmarks (cold plan, warm replan, drift repair at P ∈ {8,16,50}) and write BENCH_plan.json-style output to this file, skipping the figure sweeps")
	)
	flag.Parse()
	experiments.SetDefaultWorkers(*workers)
	if *benchJS != "" {
		if err := runBenchPlan(*benchJS); err != nil {
			fmt.Fprintln(os.Stderr, "hcbench:", err)
			os.Exit(1)
		}
		return
	}
	var report []jsonFigure

	run := func(name string) error {
		switch name {
		case "9", "10", "11", "12":
			kinds := map[string]workload.Kind{
				"9": workload.Small, "10": workload.Large,
				"11": workload.Mixed, "12": workload.Servers,
			}
			cfg := experiments.DefaultConfig(kinds[name])
			cfg.Trials = *trials
			cfg.Seed = *seed
			cfg.Workers = *workers
			var ps []int
			for p := 5; p <= *pmax; p += 5 {
				ps = append(ps, p)
			}
			cfg.Ps = ps
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			res, err := experiments.RunFigure(cfg)
			if err != nil {
				return err
			}
			wall := time.Since(start)
			runtime.ReadMemStats(&ms1)
			fmt.Printf("=== Figure %s ===\n", name)
			if *csv {
				fmt.Print(res.FormatCSV())
			} else {
				fmt.Print(res.FormatTable())
			}
			if *jsonOut != "" {
				// One schedule per (P, trial, algorithm); the engine-cost
				// ratios below are per planned schedule.
				ops := cfg.Trials * len(cfg.Ps) * len(res.Algorithms)
				fig := jsonFigure{
					Figure:      name,
					Workload:    res.Kind.String(),
					Trials:      cfg.Trials,
					Seed:        cfg.Seed,
					WallSeconds: wall.Seconds(),
					Schedules:   ops,
					Cells:       res.Cells,
				}
				if ops > 0 {
					fig.MeanNsOp = float64(wall.Nanoseconds()) / float64(ops)
					fig.AllocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(ops)
				}
				report = append(report, fig)
			}
		case "example":
			out, err := experiments.RunningExample()
			if err != nil {
				return err
			}
			fmt.Println("=== Running example (Figures 3-8) ===")
			fmt.Print(out)
		case "tight":
			rs, err := experiments.RunTightness([]int{10, 20, 30, 40, 50})
			if err != nil {
				return err
			}
			fmt.Println("=== X1: Theorem 2 tightness ===")
			fmt.Print(experiments.FormatTightness(rs))
		case "alpha":
			rs, err := experiments.RunAlphaSweep(20, *trials, *seed, []float64{0, 0.1, 0.2, 0.3, 0.5, 1.0})
			if err != nil {
				return err
			}
			fmt.Println("=== X3: interleaved receives ===")
			fmt.Print(experiments.FormatAlpha(rs))
		case "buffer":
			rs, err := experiments.RunBufferSweep(20, *trials, *seed, []int{1, 2, 4, 8, 16})
			if err != nil {
				return err
			}
			fmt.Println("=== X3b: finite receive buffers ===")
			fmt.Print(experiments.FormatBuffer(rs))
		case "incr":
			rs, err := experiments.RunIncremental(20, *trials, *seed, []float64{0.05, 0.1, 0.2, 0.4, 0.8})
			if err != nil {
				return err
			}
			fmt.Println("=== X4: incremental repair ===")
			fmt.Print(experiments.FormatIncremental(rs))
		case "ckpt":
			rs, err := experiments.RunCheckpointStudy(16, *trials, *seed)
			if err != nil {
				return err
			}
			fmt.Println("=== X5: checkpoint rescheduling ===")
			fmt.Print(experiments.FormatCheckpoint(rs))
		case "qos":
			rs, err := experiments.RunQoSStudy(16, *trials, *seed)
			if err != nil {
				return err
			}
			fmt.Println("=== X6: QoS deadlines ===")
			fmt.Print(experiments.FormatQoS(rs))
		case "critical":
			rs, err := experiments.RunCriticalStudy(16, *trials, *seed)
			if err != nil {
				return err
			}
			fmt.Println("=== X7: critical resource ===")
			fmt.Print(experiments.FormatCritical(rs))
		case "indirect":
			rs, err := experiments.RunIndirectStudy(16, *trials, *seed, nil)
			if err != nil {
				return err
			}
			fmt.Println("=== X12: direct vs combine-and-forward ===")
			fmt.Print(experiments.FormatIndirect(rs))
		case "multinet":
			rs, err := experiments.RunMultinetStudy(16, *trials, *seed)
			if err != nil {
				return err
			}
			fmt.Println("=== X11: multiple heterogeneous networks ===")
			fmt.Print(experiments.FormatMultinet(rs))
		case "gap":
			rs, err := experiments.RunOptimalityGap(4, *trials, *seed)
			if err != nil {
				return err
			}
			fmt.Println("=== X10: heuristics vs exact optimum ===")
			fmt.Print(experiments.FormatGap(rs, 4))
		case "staging":
			rs, err := experiments.RunStagingStudy(16, 3, 24, *trials, *seed)
			if err != nil {
				return err
			}
			fmt.Println("=== X9: data staging (BADD) ===")
			fmt.Print(experiments.FormatStaging(rs))
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{*fig}
	switch *fig {
	case "all":
		names = []string{"example", "9", "10", "11", "12", "tight", "alpha", "buffer", "incr", "ckpt", "qos", "critical", "staging", "gap", "multinet", "indirect"}
	case "sweeps":
		names = []string{"9", "10", "11", "12"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "hcbench:", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hcbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hcbench:", err)
			os.Exit(1)
		}
		fmt.Printf("json: %d figure sweep(s) written to %s\n", len(report), *jsonOut)
	}
}
