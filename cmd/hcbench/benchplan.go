package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"hetsched/internal/comm"
	"hetsched/internal/model"
	"hetsched/internal/netmodel"
	"hetsched/internal/sched"
)

// The -bench-json mode: in-process micro-benchmarks of the planning
// hot paths, written as BENCH_plan.json so the performance trajectory
// is tracked in-repo alongside the code. Three paths are measured at
// each processor count:
//
//   - cold-plan:    a from-scratch matching decomposition, the cost a
//     repeated exchange pays on a cache miss;
//   - warm-replan:  the steady-state repeated exchange through
//     AllToAllRepeatedScratch — snapshot, model rebuild, cache
//     recognition, render — the path the zero-alloc tests pin;
//   - repair-drift: repeated exchanges over a drifting network, mixing
//     incremental repairs with the occasional recompute.
//
// The timing loop is self-contained (no testing.B) so the numbers
// carry per-iteration samples: mean and p95 ns/op, plans/sec, and
// allocs/op from a separate MemStats-delta loop that cannot skew the
// timed samples.

// benchEntry is one measured path at one processor count.
type benchEntry struct {
	Name        string  `json:"name"`
	P           int     `json:"p"`
	Iters       int     `json:"iters"`
	PlansPerSec float64 `json:"plans_per_sec"`
	MeanNsOp    float64 `json:"mean_ns_op"`
	P95NsOp     float64 `json:"p95_ns_op"`
	AllocsOp    float64 `json:"allocs_op"`
}

// benchSpeedup compares warm-replan to cold-plan throughput at one
// processor count.
type benchSpeedup struct {
	P       int     `json:"p"`
	Speedup float64 `json:"warm_vs_cold"`
}

// benchReport is the whole BENCH_plan.json document. The schema string
// versions it; EXPERIMENTS.md documents the fields.
type benchReport struct {
	Schema     string         `json:"schema"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Ps         []int          `json:"ps"`
	Entries    []benchEntry   `json:"entries"`
	Speedups   []benchSpeedup `json:"speedup_warm_vs_cold"`
}

const (
	benchMinIters   = 20
	benchMaxIters   = 20000
	benchBudget     = 300 * time.Millisecond
	benchAllocIters = 50
)

// measureBench samples op until both the iteration floor and the time
// budget are met, then measures allocations over a separate loop —
// ReadMemStats inside the timed loop would distort the samples.
func measureBench(name string, p int, op func()) benchEntry {
	op() // warm caches and scratch buffers
	op()
	var samples []float64
	total := time.Duration(0)
	for len(samples) < benchMaxIters && (len(samples) < benchMinIters || total < benchBudget) {
		t0 := time.Now()
		op()
		d := time.Since(t0)
		total += d
		samples = append(samples, float64(d.Nanoseconds()))
	}
	sort.Float64s(samples)
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	idx := int(math.Ceil(0.95*float64(len(samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < benchAllocIters; i++ {
		op()
	}
	runtime.ReadMemStats(&ms1)
	return benchEntry{
		Name:        name,
		P:           p,
		Iters:       len(samples),
		PlansPerSec: 1e9 / mean,
		MeanNsOp:    mean,
		P95NsOp:     samples[idx],
		AllocsOp:    float64(ms1.Mallocs-ms0.Mallocs) / benchAllocIters,
	}
}

// driftedPerfs builds a cycle of performance tables where consecutive
// tables differ on about p/4 pairs by ±30% — enough to dirty a
// minority of steps, so repairs actually repair instead of recomputing
// (the cycle's wrap-around transition accumulates every change and
// exercises the recompute fallback too).
func driftedPerfs(rng *rand.Rand, base *netmodel.Perf, p, hist int) []*netmodel.Perf {
	perfs := make([]*netmodel.Perf, hist)
	perfs[0] = base
	for k := 1; k < hist; k++ {
		next := perfs[k-1].Clone()
		for t := 0; t < p/4+1; t++ {
			i, j := rng.Intn(p), rng.Intn(p)
			if i == j {
				continue
			}
			pp := next.At(i, j)
			if t%2 == 0 {
				pp.Bandwidth *= 1.3
			} else {
				pp.Bandwidth *= 0.77
			}
			next.Set(i, j, pp)
		}
		perfs[k] = next
	}
	return perfs
}

// runBenchPlan executes the planning micro-benchmarks and writes the
// report to path.
func runBenchPlan(path string) error {
	ps := []int{8, 16, 50}
	rep := benchReport{
		Schema:     "hetsched-bench-plan/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Ps:         ps,
	}
	for _, p := range ps {
		rng := rand.New(rand.NewSource(int64(p) * 9176))
		gcfg := netmodel.GustoGuided()
		// Asymmetric tables are tie-free, which keeps the warm-start
		// certificate on its hit path (symmetric tables hold exactly
		// tied matchings the certificate refuses to predict).
		gcfg.Symmetric = false
		perf := netmodel.RandomPerf(rng, p, gcfg)
		sizes := model.UniformSizes(p, 1<<16)
		m, err := model.Build(perf, sizes)
		if err != nil {
			return err
		}
		var opErr error
		record := func(e error) {
			if opErr == nil && e != nil {
				opErr = e
			}
		}

		cold := measureBench("cold-plan", p, func() {
			_, e := sched.MaxMatching{}.Schedule(m)
			record(e)
		})

		t0 := time.Unix(0, 0)
		steady, err := comm.New(p,
			func() (*netmodel.Perf, error) { return perf, nil },
			comm.Config{Clock: func() time.Time { return t0 }})
		if err != nil {
			return err
		}
		var sc comm.PlanScratch
		warm := measureBench("warm-replan", p, func() {
			_, e := steady.AllToAllRepeatedScratch(sizes, &sc)
			record(e)
		})

		perfs := driftedPerfs(rng, perf, p, 8)
		idx := 0
		drifting, err := comm.New(p,
			func() (*netmodel.Perf, error) { idx++; return perfs[idx%len(perfs)], nil },
			comm.Config{Clock: func() time.Time { return t0 }})
		if err != nil {
			return err
		}
		var scDrift comm.PlanScratch
		repair := measureBench("repair-drift", p, func() {
			_, e := drifting.AllToAllRepeatedScratch(sizes, &scDrift)
			record(e)
		})
		if opErr != nil {
			return opErr
		}
		rep.Entries = append(rep.Entries, cold, warm, repair)
		rep.Speedups = append(rep.Speedups, benchSpeedup{P: p, Speedup: cold.MeanNsOp / warm.MeanNsOp})
		fmt.Printf("bench p=%-3d cold %.0f ns/op (%.1f allocs)  warm %.0f ns/op (%.1f allocs)  repair %.0f ns/op  warm-vs-cold %.1f×\n",
			p, cold.MeanNsOp, cold.AllocsOp, warm.MeanNsOp, warm.AllocsOp, repair.MeanNsOp, cold.MeanNsOp/warm.MeanNsOp)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench-json: report written to %s\n", path)
	return nil
}
