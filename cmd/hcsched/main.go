// Command hcsched schedules a total exchange over a heterogeneous
// network and prints the resulting timing diagram and statistics.
//
// The communication matrix comes from one of three sources:
//
//	hcsched -example                         # the paper's running example
//	hcsched -matrix comm.txt                 # a matrix file (see -help)
//	hcsched -random -p 12 -size 1048576      # GUSTO-guided random instance
//
// Usage:
//
//	hcsched [-alg openshop] [-diagram] [-csv] [-all] <source flags>
//
// The matrix file format is the model text format: a comment-friendly
// header line with P followed by P rows of P space-separated times in
// seconds (diagonal zero).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hetsched"
)

func main() {
	var (
		alg     = flag.String("alg", "openshop", "scheduler: baseline, baseline-barrier, maxmatch, minmatch, greedy, openshop")
		all     = flag.Bool("all", false, "run every scheduler and print a comparison table")
		example = flag.Bool("example", false, "use the paper's 5-processor running example")
		matrix  = flag.String("matrix", "", "read the communication matrix from this file")
		random  = flag.Bool("random", false, "generate a GUSTO-guided random instance")
		p       = flag.Int("p", 10, "processors for -random")
		size    = flag.Int64("size", 1<<20, "message size in bytes for -random")
		seed    = flag.Int64("seed", 1, "random seed for -random")
		diagram = flag.Bool("diagram", false, "print the ASCII timing diagram")
		rows    = flag.Int("rows", 24, "diagram height in rows")
		csvOut  = flag.Bool("csv", false, "print the schedule as CSV events")
		jsonOut = flag.Bool("json", false, "print the schedule as JSON")
		svgOut  = flag.String("svg", "", "write the timing diagram as SVG to this file")
		crit    = flag.Bool("critical", false, "print the critical dependence chain and port utilization")
	)
	flag.Parse()

	m, err := loadMatrix(*example, *matrix, *random, *p, *size, *seed)
	if err != nil {
		fatal(err)
	}

	if *all {
		results, err := hetsched.Compare(m)
		if err != nil {
			fatal(err)
		}
		fmt.Print(hetsched.FormatComparison(results))
		return
	}

	s, err := hetsched.SchedulerByName(*alg)
	if err != nil {
		fatal(err)
	}
	res, err := s.Schedule(m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algorithm:   %s\n", res.Algorithm)
	fmt.Printf("processors:  %d\n", m.N())
	fmt.Printf("lower bound: %.6g s\n", res.LowerBound)
	fmt.Printf("completion:  %.6g s (%.3f x lower bound)\n", res.CompletionTime(), res.Ratio())
	if *diagram {
		fmt.Println()
		fmt.Print(hetsched.RenderASCII(res.Schedule, hetsched.RenderOptions{Rows: *rows}))
	}
	if *crit {
		fmt.Println("\ncritical dependence chain:")
		fmt.Print(hetsched.FormatCriticalPath(hetsched.CriticalPath(res.Schedule)))
		p, v := hetsched.BottleneckProcessor(res.Schedule)
		fmt.Printf("bottleneck: P%d at %.1f%% port utilization\n", p, v*100)
	}
	if *csvOut {
		fmt.Println()
		if err := writeCSV(res); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		data, err := json.MarshalIndent(res.Schedule, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("%s schedule, t_lb=%.4g s", res.Algorithm, res.LowerBound)
		if err := hetsched.RenderSVG(f, res.Schedule, hetsched.SVGOptions{Title: title}); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}

func loadMatrix(example bool, matrixPath string, random bool, p int, size, seed int64) (*hetsched.Matrix, error) {
	switch {
	case example:
		return hetsched.ExampleMatrix(), nil
	case matrixPath != "":
		data, err := os.ReadFile(matrixPath)
		if err != nil {
			return nil, err
		}
		return hetsched.ParseMatrix(string(data))
	case random:
		rng := rand.New(rand.NewSource(seed))
		perf := hetsched.RandomPerf(rng, p, hetsched.GustoGuided())
		return hetsched.BuildUniform(perf, size)
	default:
		return nil, fmt.Errorf("pick a source: -example, -matrix FILE, or -random")
	}
}

func writeCSV(res *hetsched.Result) error {
	fmt.Println("src,dst,start,finish")
	for _, e := range res.Schedule.ByStart() {
		fmt.Printf("%d,%d,%g,%g\n", e.Src, e.Dst, e.Start, e.Finish)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcsched:", err)
	os.Exit(1)
}
