package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the test process into dir and restores the previous
// working directory on cleanup.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// fixture resolves one of internal/analysis's testdata trees. The
// golden and clean fixtures carry their own go.mod, so running hetvet
// from inside them analyzes the fixture, not the enclosing repo.
func fixture(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestUsageErrorExits2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errBuf); code != 2 {
		t.Errorf("exit = %d, want 2 (stderr: %s)", code, errBuf.String())
	}
}

func TestLoadErrorExits2(t *testing.T) {
	chdir(t, fixture(t, "golden"))
	var out, errBuf bytes.Buffer
	if code := run([]string{"does/not/exist"}, &out, &errBuf); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "hetvet:") {
		t.Errorf("stderr = %q, want a hetvet: error", errBuf.String())
	}
}

func TestListExits0(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"nilguard", "determinism", "lockio", "errdiscard", "tracectx", "goleak", "lockorder", "hotpath"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownCheckExits2 locks the -checks typo behavior: a name the
// suite does not have is a usage error that lists the valid names,
// never a silent no-op run.
func TestUnknownCheckExits2(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-checks=bogus"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errBuf.String())
	}
	msg := errBuf.String()
	if !strings.Contains(msg, `unknown check "bogus"`) {
		t.Errorf("stderr = %q, want the unknown check named", msg)
	}
	for _, name := range []string{"nilguard", "determinism", "lockio", "errdiscard", "tracectx", "goleak", "lockorder", "hotpath"} {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr missing valid name %q:\n%s", name, msg)
		}
	}
}

// TestChecksSubset: selecting the check that fires reports findings;
// selecting one that does not leaves the same tree clean.
func TestChecksSubset(t *testing.T) {
	chdir(t, fixture(t, "golden"))
	var out, errBuf bytes.Buffer
	if code := run([]string{"-checks=errdiscard", "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("-checks=errdiscard exit = %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-checks=nilguard", "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("-checks=nilguard exit = %d, want 0:\n%s%s", code, out.String(), errBuf.String())
	}
}

// TestEscapesNeedsHotpath: -escapes cross-checks hotpath's regions, so
// selecting it without hotpath is a usage error.
func TestEscapesNeedsHotpath(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-checks=errdiscard", "-escapes"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "hotpath") {
		t.Errorf("stderr = %q, want it to mention hotpath", errBuf.String())
	}
}

func TestFindingsExit1(t *testing.T) {
	chdir(t, fixture(t, "golden"))
	var out, errBuf bytes.Buffer
	if code := run([]string{"./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "internal/g/g.go:") || !strings.Contains(line, "[errdiscard]") {
			t.Errorf("unexpected finding line: %s", line)
		}
	}
}

func TestJSONFindingsExit1(t *testing.T) {
	chdir(t, fixture(t, "golden"))
	var out, errBuf bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var d struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if d.File != "internal/g/g.go" || d.Check != "errdiscard" || d.Line == 0 || d.Message == "" {
			t.Errorf("unexpected JSON finding: %+v", d)
		}
	}
}

func TestCleanTreeExits0(t *testing.T) {
	chdir(t, fixture(t, "clean"))
	var out, errBuf bytes.Buffer
	if code := run([]string{"./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0:\n%s%s", code, out.String(), errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}
