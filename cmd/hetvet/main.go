// Command hetvet runs the project's static-analysis suite: four
// checkers enforcing the repo's concurrency, determinism, and telemetry
// invariants (see internal/analysis and DESIGN.md §9).
//
// Usage:
//
//	hetvet [-json] [packages]
//
// Packages default to ./... and are resolved against the enclosing
// module. Exit status: 0 when clean, 1 when findings were reported,
// 2 on usage or load errors. With -json each diagnostic is one JSON
// object per line ({"file","line","col","check","message"}), the form
// CI annotations and tooling consume; the default output is
// "file:line: [check] message".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hetsched/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("hetvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit one JSON diagnostic per line")
	list := flags.Bool("checks", false, "list the checks and exit")
	flags.Usage = func() {
		fmt.Fprintln(stderr, "usage: hetvet [-json] [-checks] [packages]")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range analysis.DefaultCheckers() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name(), c.Desc())
		}
		return 0
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.Load(flags.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	diags := analysis.Run(pkgs, analysis.DefaultCheckers(), root)
	if *jsonOut {
		err = analysis.WriteJSON(stdout, diags)
	} else {
		err = analysis.WriteText(stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
