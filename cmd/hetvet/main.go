// Command hetvet runs the project's static-analysis suite: eight
// checkers enforcing the repo's concurrency, determinism, telemetry,
// and zero-allocation invariants (see internal/analysis and DESIGN.md
// §9).
//
// Usage:
//
//	hetvet [-json] [-checks=name,name] [-escapes] [packages]
//
// Packages default to ./... and are resolved against the enclosing
// module. -checks selects a subset of the suite by name (-list prints
// the names); an unknown name is a usage error. -escapes cross-checks
// the compiler's escape analysis against the //hetvet:hotpath regions
// and requires the hotpath check to be selected. Exit status: 0 when
// clean, 1 when findings were reported, 2 on usage or load errors.
// With -json each diagnostic is one JSON object per line
// ({"file","line","col","check","message"}), the form CI annotations
// and tooling consume; the default output is
// "file:line: [check] message".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hetsched/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("hetvet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit one JSON diagnostic per line")
	list := flags.Bool("list", false, "list the checks and exit")
	checks := flags.String("checks", "", "comma-separated check names to run (default: all)")
	escapes := flags.Bool("escapes", false, "cross-check compiler escape analysis over //hetvet:hotpath regions")
	flags.Usage = func() {
		fmt.Fprintln(stderr, "usage: hetvet [-json] [-list] [-checks=name,name] [-escapes] [packages]")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range analysis.DefaultCheckers() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name(), c.Desc())
		}
		return 0
	}
	checkers, err := selectCheckers(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	if *escapes && !hasChecker(checkers, "hotpath") {
		fmt.Fprintln(stderr, "hetvet: -escapes needs the hotpath check selected (it cross-checks hotpath's regions)")
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.Load(flags.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	diags := analysis.Run(pkgs, checkers, root)
	if *escapes {
		esc, err := analysis.EscapeDiagnostics("go", root, analysis.HotRegions(pkgs))
		if err != nil {
			fmt.Fprintln(stderr, "hetvet:", err)
			return 2
		}
		for i := range esc {
			if rel, err := filepath.Rel(root, esc[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				esc[i].File = filepath.ToSlash(rel)
			}
		}
		diags = append(diags, esc...)
	}
	if *jsonOut {
		err = analysis.WriteJSON(stdout, diags)
	} else {
		err = analysis.WriteText(stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(stderr, "hetvet:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectCheckers resolves a comma-separated -checks spec against the
// default suite ("" selects everything). An unknown name is an error
// that lists the valid names, so a typo cannot silently run nothing.
func selectCheckers(spec string) ([]analysis.Checker, error) {
	all := analysis.DefaultCheckers()
	if spec == "" {
		return all, nil
	}
	byName := map[string]analysis.Checker{}
	names := make([]string, 0, len(all))
	for _, c := range all {
		byName[c.Name()] = c
		names = append(names, c.Name())
	}
	var out []analysis.Checker
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (valid: %s)", name, strings.Join(names, ", "))
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, c)
	}
	return out, nil
}

// hasChecker reports whether the selection includes the named check.
func hasChecker(checkers []analysis.Checker, name string) bool {
	for _, c := range checkers {
		if c.Name() == name {
			return true
		}
	}
	return false
}
