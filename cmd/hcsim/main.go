// Command hcsim executes a scheduled total exchange through the
// discrete-event simulator and reports what actually happens under
// FIFO receive arbitration, optional bandwidth drift, and the
// Section 6.1 receive-model variants.
//
//	hcsim -p 16 -size 1048576 -alg openshop                 # base model
//	hcsim -p 16 -model interleaved -alpha 0.3               # §6.1 threads
//	hcsim -p 16 -model buffered -capacity 4                 # §6.1 buffers
//	hcsim -p 16 -drift 0.3 -checkpoint every -replan        # §6.3 adaptivity
//	hcsim -p 16 -faults 5 -checkpoint every -replan         # seeded link failures
//	hcsim -net state.json -alg maxmatch                     # saved network
//	hcsim -replay rec.json -checkpoint every -replan        # replay a recording
//	hcsim -p 16 -trace out.json                             # write a Chrome/Perfetto trace
//	hcsim -p 8 -execute -transport mem                      # real byte transfers, in-process
//	hcsim -p 8 -execute -transport tcp -faults 2            # loopback TCP, 2 seeded node kills
//	hcsim -p 8 -execute -calibrate                          # fit measured timings, print verdicts
//	hcsim -p 8 -execute -calibrate -calibrate-push :7474    # and feed them to a live directory
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"hetsched"
	"hetsched/internal/calib"
	"hetsched/internal/directory"
	dataplane "hetsched/internal/exec"
	"hetsched/internal/faults"
	"hetsched/internal/netmodel"
	"hetsched/internal/obs"
	"hetsched/internal/sim"
	"hetsched/internal/timing"
)

func main() {
	var (
		netFile    = flag.String("net", "", "load network state from a JSON file (see hcquery -emit / hcdird -save)")
		replayFile = flag.String("replay", "", "replay a recorded network-condition series (recording JSON)")
		traceOut   = flag.String("trace", "", "write the executed schedule as Chrome trace_event JSON (chrome://tracing, Perfetto)")
		p          = flag.Int("p", 16, "processors for random generation")
		seed       = flag.Int64("seed", 1, "random seed")
		size       = flag.Int64("size", 1<<20, "message size in bytes")
		alg        = flag.String("alg", "openshop", "scheduler that builds the plan")
		modelName  = flag.String("model", "exclusive", "receive model: exclusive, interleaved, buffered")
		alpha      = flag.Float64("alpha", 0.25, "context-switch overhead for -model interleaved")
		capacity   = flag.Int("capacity", 4, "buffer capacity for -model buffered")
		drift      = flag.Float64("drift", 0, "if > 0, crash this fraction of links to 10% bandwidth mid-run")
		faultCount = flag.Int("faults", 0, "inject this many seeded mid-run link degradations/failures (exclusive model)")
		checkpoint = flag.String("checkpoint", "none", "checkpoint policy: none, every, halving")
		replan     = flag.Bool("replan", false, "reschedule the tail at checkpoints (otherwise keep order)")
		execute    = flag.Bool("execute", false, "perform the plan as real byte transfers over a transport (with -execute, -faults kills that many seeded nodes mid-exchange)")
		transport  = flag.String("transport", "mem", "-execute transport: mem (in-process pipes) or tcp (loopback sockets)")
		slack      = flag.Float64("slack", 0, "-execute deadline slack factor over modeled transfer times (0 = executor default)")
		calibrate  = flag.Bool("calibrate", false, "with -execute, fit a network calibrator from the measured transfer timings and print its per-pair verdicts")
		calibPush  = flag.String("calibrate-push", "", "with -calibrate, also push trusted estimates to the directory service at this address")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var perf *hetsched.Perf
	var recording *hetsched.Recording
	var names []string
	switch {
	case *replayFile != "":
		data, err := os.ReadFile(*replayFile)
		if err != nil {
			fatal(err)
		}
		recording = hetsched.NewRecording(nil)
		if err := json.Unmarshal(data, recording); err != nil {
			fatal(err)
		}
		if recording.Len() == 0 {
			fatal(fmt.Errorf("recording %s is empty", *replayFile))
		}
		_, perf = recording.Sample(0) // plan from the opening conditions
		fmt.Printf("replaying %d recorded network samples from %s\n", recording.Len(), *replayFile)
	case *netFile != "":
		data, err := os.ReadFile(*netFile)
		if err != nil {
			fatal(err)
		}
		perf, names, err = netmodel.UnmarshalPerf(data)
		if err != nil {
			fatal(err)
		}
	default:
		perf = hetsched.RandomPerf(rng, *p, hetsched.GustoGuided())
	}

	// -trace: record checkpoint/replan instants during execution and the
	// executed schedule afterwards, then write one Perfetto-loadable file.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(nil)
		sim.SetTelemetry(nil, tracer)
		defer sim.SetTelemetry(nil, nil)
	}
	n := perf.N()
	sizes := hetsched.UniformSizes(n, *size)
	m, err := hetsched.Build(perf, sizes)
	if err != nil {
		fatal(err)
	}
	scheduler, err := hetsched.SchedulerByName(*alg)
	if err != nil {
		fatal(err)
	}
	res, err := scheduler.Schedule(m)
	if err != nil {
		fatal(err)
	}
	plan, err := hetsched.PlanFromSchedule(res.Schedule, sizes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: %s over %d processors, %d events\n", res.Algorithm, n, plan.Events())
	fmt.Printf("planned completion: %.4g s (lower bound %.4g s)\n", res.CompletionTime(), res.LowerBound)

	if *execute {
		runExecute(rng, res, m, sizes, perf, *transport, *slack, *faultCount, *calibrate, *calibPush, tracer)
		writeTrace(tracer, *traceOut, nil, names)
		return
	}
	if *calibrate {
		fatal(fmt.Errorf("-calibrate needs -execute: calibration fits measured transfers, and only -execute moves bytes"))
	}

	// The execution network, optionally shifting mid-run.
	var network hetsched.Network = sim.NewStatic(perf)
	var observe func(float64) *hetsched.Perf
	var faultTimes []float64
	if *faultCount > 0 {
		if *modelName != "exclusive" {
			fatal(fmt.Errorf("-faults needs -model exclusive (reactive re-planning)"))
		}
		if recording != nil || *drift > 0 {
			fatal(fmt.Errorf("-faults cannot combine with -replay or -drift"))
		}
		events := faults.RandomLinkEvents(rng, n, *faultCount, res.CompletionTime())
		fn, err := faults.NewNetwork(perf, events)
		if err != nil {
			fatal(err)
		}
		network = fn
		observe = fn.At
		faultTimes = fn.Times()
		for _, e := range events {
			if e.Factor == 0 {
				fmt.Printf("fault: link %d→%d FAILS at t=%.4g s\n", e.Src, e.Dst, e.Time)
			} else {
				fmt.Printf("fault: link %d→%d degrades to %.0f%% at t=%.4g s\n", e.Src, e.Dst, 100*e.Factor, e.Time)
			}
		}
	} else if recording != nil {
		pw, err := recording.Network()
		if err != nil {
			fatal(err)
		}
		network = pw
		observe = pw.At
	} else if *drift > 0 {
		after := perf.Clone()
		crashed := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < *drift {
					pp := after.At(i, j)
					pp.Bandwidth /= 10
					after.Set(i, j, pp)
					crashed++
				}
			}
		}
		shift := res.CompletionTime() / 4
		pw, err := sim.NewPiecewise([]sim.Epoch{{Start: 0, Perf: perf}, {Start: shift, Perf: after}})
		if err != nil {
			fatal(err)
		}
		network = pw
		observe = pw.At
		fmt.Printf("drift: %d links crash 10x at t=%.4g s\n", crashed, shift)
	} else {
		st := sim.NewStatic(perf)
		observe = func(float64) *hetsched.Perf { return st.Perf() }
	}

	var executed *timing.Schedule
	switch *modelName {
	case "exclusive":
		var policy hetsched.CheckpointPolicy
		switch *checkpoint {
		case "none":
			policy = hetsched.NoCheckpoints{}
		case "every":
			policy = hetsched.EveryEvents{K: n}
		case "halving":
			policy = hetsched.Halving{}
		default:
			fatal(fmt.Errorf("unknown checkpoint policy %q", *checkpoint))
		}
		rp := hetsched.KeepOrder
		rpName := "keep-order"
		if *replan {
			rp = hetsched.ReplanOpenShop
			rpName = "openshop"
		}
		if *faultCount > 0 {
			// Reactive mode: checkpoint on schedule but only re-plan when a
			// fault event actually landed in the window just executed.
			rr, err := sim.RunReactive(network, observe, faultTimes, plan, policy, rp)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("executed (exclusive, reactive, checkpoints=%s, replan=%s): finish %.4g s, %d checkpoints, %d replans\n",
				policy.Name(), rpName, rr.Finish, rr.Checkpoints, rr.Replans)
			executed = rr.Schedule
			break
		}
		ck, err := hetsched.SimulateCheckpointed(network, observe, plan, policy, rp)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed (exclusive, checkpoints=%s, replan=%s): finish %.4g s, %d checkpoints\n",
			policy.Name(), rpName, ck.Finish, ck.Checkpoints)
		executed = ck.Schedule
	case "interleaved":
		exec, err := hetsched.SimulateInterleaved(network, plan, *alpha)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed (interleaved, α=%.2f): finish %.4g s\n", *alpha, exec.Finish)
		executed = exec.Schedule
	case "buffered":
		exec, err := hetsched.SimulateBuffered(network, plan, *capacity)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed (buffered, capacity=%d): finish %.4g s\n", *capacity, exec.Finish)
		executed = exec.Schedule
	default:
		fatal(fmt.Errorf("unknown receive model %q", *modelName))
	}

	writeTrace(tracer, *traceOut, executed, names)
}

// writeTrace renders the executed schedule (when there is one) plus
// any instants the run recorded into one Perfetto-loadable file.
func writeTrace(tracer *obs.Tracer, path string, executed *timing.Schedule, names []string) {
	if tracer == nil || path == "" {
		return
	}
	if executed != nil {
		obs.TraceSchedule(tracer, "exec", executed, names)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := tracer.WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("trace: %d events written to %s (load in chrome://tracing or Perfetto)\n",
		tracer.Len(), path)
}

// runExecute performs the plan as real byte transfers over a data-plane
// transport. With faultCount > 0 it kills that many seeded nodes
// mid-exchange — each kill triggers after a seeded number of deliveries
// — and lets the executor recover via residual rescheduling. With
// calibrate, the measured per-transfer timings feed a network
// calibrator seeded from the planning table; its per-pair verdicts are
// printed after the exchange, and pushAddr sends trusted estimates to
// a live directory over the calibrate op.
func runExecute(rng *rand.Rand, res *hetsched.Result, m *hetsched.Matrix,
	sizes *hetsched.Sizes, perf *hetsched.Perf, transport string, slack float64,
	faultCount int, calibrate bool, pushAddr string, tracer *obs.Tracer) {
	n := m.N()
	var tr dataplane.Transport
	var err error
	switch transport {
	case "mem":
		tr, err = dataplane.NewMem(n)
	case "tcp":
		tr, err = dataplane.NewTCP(n)
	default:
		err = fmt.Errorf("unknown transport %q (mem, tcp)", transport)
	}
	if err != nil {
		fatal(err)
	}
	if faultCount > n-2 {
		faultCount = n - 2
		fmt.Printf("capping -faults at %d so at least two nodes survive\n", faultCount)
	}
	victims := rng.Perm(n)[:max(faultCount, 0)]
	total := n * (n - 1)
	triggers := make([]int, len(victims))
	for i := range triggers {
		// Seeded points spread across the exchange's delivery count.
		triggers[i] = 1 + rng.Intn(max(total/2, 1)) + i*total/(2*max(len(victims), 1))
	}
	var (
		mu        sync.Mutex
		delivered int
		nextKill  int
	)
	cfg := dataplane.Config{Slack: slack, Tracer: tracer}
	var cal *calib.Calibrator
	if calibrate {
		var err error
		if cal, err = calib.New(perf, calib.Config{}); err != nil {
			fatal(err)
		}
		var sink func([]calib.Update) error
		if pushAddr != "" {
			rc := directory.NewResilientClient(pushAddr, directory.ResilientConfig{})
			defer rc.Close()
			sink = directory.CalibrateSink(rc)
		}
		cfg.Samples = func(samples []calib.Sample) {
			cal.ObserveBatch(samples)
			if sink == nil {
				return
			}
			if updates := cal.Updates(); len(updates) > 0 {
				if err := sink(updates); err != nil {
					fmt.Printf("calibrate: push to %s failed: %v\n", pushAddr, err)
				} else {
					fmt.Printf("calibrate: pushed %d trusted pair estimates to %s\n", len(updates), pushAddr)
				}
			}
		}
	}
	cfg.Deliver = func(src, dst int, payload []byte) {
		mu.Lock()
		delivered++
		kill := -1
		if nextKill < len(victims) && delivered >= triggers[nextKill] {
			kill = victims[nextKill]
			nextKill++
		}
		mu.Unlock()
		if kill >= 0 {
			fmt.Printf("fault: killing P%d after %d deliveries\n", kill, delivered)
			tr.Kill(kill)
		}
	}
	ex, err := dataplane.New(tr, cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := ex.Run(context.Background(), res, m, sizes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("executed (%s transport): %d/%d transfers delivered\n",
		transport, rep.DeliveredTransfers+rep.ReroutedTransfers, total)
	fmt.Print(rep.String())
	if cal != nil {
		printCalibration(cal, sizes)
	}
}

// printCalibration renders the calibrator's verdict on the measured
// network: totals, then every measured pair's estimate against the
// table it planned from.
func printCalibration(cal *calib.Calibrator, sizes *hetsched.Sizes) {
	sum := cal.Summarize()
	fmt.Printf("calibration: %d samples accepted, %d rejected; %d/%d measured pairs trusted (threshold %.2f)\n",
		sum.Accepted, sum.Rejected, sum.TrustedPairs, sum.MeasuredPairs, sum.TrustThreshold)
	n := cal.N()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			pe := cal.Pair(src, dst)
			if pe.Accepted == 0 && pe.Rejected == 0 {
				continue
			}
			state := "distrusted"
			if pe.Trusted {
				state = "trusted"
			}
			modeled := pe.Prior.TransferTime(sizes.At(src, dst))
			measured := pe.Perf.TransferTime(sizes.At(src, dst))
			fmt.Printf("  P%d->P%d: %s conf %.2f, table %.4gs vs measured %.4gs (%d accepted, %d rejected)\n",
				src, dst, state, pe.Confidence, modeled, measured, pe.Accepted, pe.Rejected)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcsim:", err)
	os.Exit(1)
}
