// Command hcstat renders a running hetpland daemon's statusz snapshot
// in the terminal: queue depth, in-flight planning, outcome counters,
// rung distribution, cache hit ratio, estimator percentiles, the
// tail sampler's slowest retained traces, per-pair network calibration
// confidence (when the daemon runs -calibrate), and the flight
// recorder's recent events.
//
// Usage:
//
//	hcstat -addr 127.0.0.1:9091                 # one text snapshot
//	hcstat -addr 127.0.0.1:9091 -json           # raw JSON snapshot
//	hcstat -addr 127.0.0.1:9091 -watch 2s       # refresh every 2s
//	hcstat -addr 127.0.0.1:9091 -traces t.json  # save the Perfetto export
//
// -addr is hetpland's telemetry address (-metrics-addr), not its plan
// port: statusz rides the same listener as /metrics. The -traces file
// loads directly into https://ui.perfetto.dev or chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9091", "hetpland telemetry address (the -metrics-addr value)")
		asJSON  = flag.Bool("json", false, "print the raw JSON snapshot instead of text")
		watch   = flag.Duration("watch", 0, "refresh every interval (0 = one snapshot)")
		traces  = flag.String("traces", "", "also download /statusz/traces (Perfetto JSON) to this file")
		timeout = flag.Duration("timeout", 5*time.Second, "HTTP timeout per fetch")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	url := "http://" + *addr + "/statusz"
	if *asJSON {
		url += "?format=json"
	}

	for {
		body, err := fetch(client, url)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(body)
		if *traces != "" {
			tb, err := fetch(client, "http://"+*addr+"/statusz/traces")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*traces, tb, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("hcstat: Perfetto trace written to %s (load it at https://ui.perfetto.dev)\n", *traces)
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}

// fetch GETs one URL and returns its body, treating non-200 as error.
func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcstat:", err)
	os.Exit(1)
}
