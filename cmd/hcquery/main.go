// Command hcquery is the directory client: it queries a running
// hcdird daemon (or prints the built-in GUSTO tables) and can emit a
// communication matrix for a given message size, ready for hcsched.
//
// Usage:
//
//	hcquery -gusto                         # print Tables 1 and 2
//	hcquery -addr 127.0.0.1:7474           # snapshot a live directory
//	hcquery -addr ... -pair 0,3            # one pair
//	hcquery -addr ... -emit -size 1048576  # matrix in hcsched format
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hetsched"
	"hetsched/internal/directory"
	"hetsched/internal/netmodel"
)

func main() {
	var (
		addr  = flag.String("addr", "", "directory server address")
		gusto = flag.Bool("gusto", false, "print the built-in GUSTO tables and exit")
		pair  = flag.String("pair", "", "query one ordered pair, e.g. 0,3")
		emit  = flag.Bool("emit", false, "emit a communication matrix in hcsched text format")
		size  = flag.Int64("size", 1<<20, "message size in bytes for -emit")
	)
	flag.Parse()

	if *gusto {
		printPerf(hetsched.Gusto(), hetsched.GustoSites)
		return
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "hcquery: need -addr or -gusto")
		os.Exit(1)
	}
	cl, err := directory.Dial(*addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()

	if *pair != "" {
		src, dst, err := parsePair(*pair)
		if err != nil {
			fatal(err)
		}
		pp, v, err := cl.Query(src, dst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pair %d→%d (version %d): latency %.3f ms, bandwidth %.1f kbit/s\n",
			src, dst, v, netmodel.SecondsToMs(pp.Latency), netmodel.BytesPerSecondToKbps(pp.Bandwidth))
		return
	}

	perf, names, v, err := cl.Snapshot()
	if err != nil {
		fatal(err)
	}
	if *emit {
		m, err := hetsched.BuildUniform(perf, *size)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# directory snapshot version %d, message size %d bytes\n", v, *size)
		fmt.Print(hetsched.FormatMatrix(m))
		return
	}
	fmt.Printf("directory snapshot, version %d\n", v)
	printPerf(perf, names)
}

func printPerf(perf *hetsched.Perf, names []string) {
	n := perf.N()
	label := func(i int) string {
		if i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("P%d", i)
	}
	fmt.Println("latency (ms):")
	fmt.Printf("%10s", "")
	for j := 0; j < n; j++ {
		fmt.Printf(" %9s", label(j))
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%10s", label(i))
		for j := 0; j < n; j++ {
			if i == j {
				fmt.Printf(" %9s", "-")
				continue
			}
			fmt.Printf(" %9.1f", netmodel.SecondsToMs(perf.At(i, j).Latency))
		}
		fmt.Println()
	}
	fmt.Println("bandwidth (kbit/s):")
	fmt.Printf("%10s", "")
	for j := 0; j < n; j++ {
		fmt.Printf(" %9s", label(j))
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%10s", label(i))
		for j := 0; j < n; j++ {
			if i == j {
				fmt.Printf(" %9s", "-")
				continue
			}
			fmt.Printf(" %9.0f", netmodel.BytesPerSecondToKbps(perf.At(i, j).Bandwidth))
		}
		fmt.Println()
	}
}

func parsePair(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("pair must be src,dst: %q", s)
	}
	src, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	dst, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	return src, dst, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcquery:", err)
	os.Exit(1)
}
