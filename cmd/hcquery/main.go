// Command hcquery is the directory client: it queries a running
// hcdird daemon (or prints the built-in GUSTO tables) and can emit a
// communication matrix for a given message size, ready for hcsched.
//
// Queries go through the resilient client: requests are retried with
// backoff across reconnects, and when the server stays unreachable the
// last snapshot this process fetched is served stale (clearly marked
// with its age) rather than failing.
//
// Usage:
//
//	hcquery -gusto                         # print Tables 1 and 2
//	hcquery -addr 127.0.0.1:7474           # snapshot a live directory
//	hcquery -addr ... -pair 0,3            # one pair
//	hcquery -addr ... -emit -size 1048576  # matrix in hcsched format
//	hcquery -addr ... -retries 5 -req-timeout 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hetsched"
	"hetsched/internal/directory"
	"hetsched/internal/netmodel"
)

func main() {
	var (
		addr       = flag.String("addr", "", "directory server address")
		gusto      = flag.Bool("gusto", false, "print the built-in GUSTO tables and exit")
		pair       = flag.String("pair", "", "query one ordered pair, e.g. 0,3")
		emit       = flag.Bool("emit", false, "emit a communication matrix in hcsched text format")
		size       = flag.Int64("size", 1<<20, "message size in bytes for -emit")
		retries    = flag.Int("retries", 3, "attempts per request before giving up")
		reqTimeout = flag.Duration("req-timeout", 5*time.Second, "per-request deadline")
	)
	flag.Parse()

	if *gusto {
		printPerf(hetsched.Gusto(), hetsched.GustoSites)
		return
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "hcquery: need -addr or -gusto")
		os.Exit(1)
	}
	cl := directory.NewResilientClient(*addr, directory.ResilientConfig{
		Retries:        *retries,
		RequestTimeout: *reqTimeout,
		DialTimeout:    5 * time.Second,
	})
	defer cl.Close()

	if *pair != "" {
		src, dst, err := parsePair(*pair)
		if err != nil {
			fatal(err)
		}
		pp, meta, err := cl.Query(src, dst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pair %d→%d (%s): latency %.3f ms, bandwidth %.1f kbit/s\n",
			src, dst, describeMeta(meta), netmodel.SecondsToMs(pp.Latency), netmodel.BytesPerSecondToKbps(pp.Bandwidth))
		return
	}

	perf, names, meta, err := cl.Snapshot()
	if err != nil {
		fatal(err)
	}
	if *emit {
		m, err := hetsched.BuildUniform(perf, *size)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# directory snapshot %s, message size %d bytes\n", describeMeta(meta), *size)
		fmt.Print(hetsched.FormatMatrix(m))
		return
	}
	fmt.Printf("directory snapshot, %s\n", describeMeta(meta))
	printPerf(perf, names)
}

// describeMeta renders a snapshot's provenance, flagging stale data.
func describeMeta(meta directory.SnapshotMeta) string {
	if meta.Stale {
		return fmt.Sprintf("version %d, STALE — server unreachable, data is %v old", meta.Version, meta.Age.Round(time.Millisecond))
	}
	return fmt.Sprintf("version %d", meta.Version)
}

func printPerf(perf *hetsched.Perf, names []string) {
	n := perf.N()
	label := func(i int) string {
		if i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("P%d", i)
	}
	fmt.Println("latency (ms):")
	fmt.Printf("%10s", "")
	for j := 0; j < n; j++ {
		fmt.Printf(" %9s", label(j))
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%10s", label(i))
		for j := 0; j < n; j++ {
			if i == j {
				fmt.Printf(" %9s", "-")
				continue
			}
			fmt.Printf(" %9.1f", netmodel.SecondsToMs(perf.At(i, j).Latency))
		}
		fmt.Println()
	}
	fmt.Println("bandwidth (kbit/s):")
	fmt.Printf("%10s", "")
	for j := 0; j < n; j++ {
		fmt.Printf(" %9s", label(j))
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%10s", label(i))
		for j := 0; j < n; j++ {
			if i == j {
				fmt.Printf(" %9s", "-")
				continue
			}
			fmt.Printf(" %9.0f", netmodel.BytesPerSecondToKbps(perf.At(i, j).Bandwidth))
		}
		fmt.Println()
	}
}

func parsePair(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("pair must be src,dst: %q", s)
	}
	src, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	dst, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	return src, dst, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcquery:", err)
	os.Exit(1)
}
