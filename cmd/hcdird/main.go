// Command hcdird runs the directory service daemon: a TCP server
// speaking the JSON-line protocol that publishes pairwise network
// performance, modelled on the Globus Metacomputing Directory Service.
// It can serve the static GUSTO tables, a random GUSTO-guided table,
// or either with a synthetic load model that drifts bandwidths over
// time, for exercising adaptive scheduling against a live directory.
//
// Usage:
//
//	hcdird -addr 127.0.0.1:7474 -gusto
//	hcdird -addr 127.0.0.1:7474 -random -p 16 -drift 100ms
//	hcdird -gusto -idle-timeout 2m                  # shed dead clients
//	hcdird -gusto -chaos-drop 0.05 -chaos-tear 0.05 # fault-injected server
//	hcdird -gusto -metrics-addr 127.0.0.1:9090      # Prometheus /metrics + pprof
//	hcdird -gusto -calibrate                        # fit raw calibration samples server-side
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetsched"
	"hetsched/internal/calib"
	"hetsched/internal/directory"
	"hetsched/internal/faults"
	"hetsched/internal/netmodel"
	"hetsched/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7474", "listen address")
		gusto       = flag.Bool("gusto", false, "serve the GUSTO tables (Tables 1 and 2)")
		random      = flag.Bool("random", false, "serve a GUSTO-guided random table")
		p           = flag.Int("p", 10, "processors for -random")
		seed        = flag.Int64("seed", 1, "seed for -random, -drift, and -chaos faults")
		drift       = flag.Duration("drift", 0, "if > 0, drift bandwidths at this interval")
		load        = flag.String("load", "", "load initial state from a JSON file")
		save        = flag.String("save", "", "save final state to a JSON file on shutdown")
		idleTimeout = flag.Duration("idle-timeout", 0, "drop connections idle longer than this (0 = never)")
		drainGrace  = flag.Duration("drain-grace", 2*time.Second, "on SIGINT/SIGTERM, keep serving connected clients this long before closing")
		chaosDrop   = flag.Float64("chaos-drop", 0, "per-op probability of severing a connection (chaos testing)")
		chaosStall  = flag.Duration("chaos-stall", 0, "if > 0, stall 10% of ops this long (chaos testing)")
		chaosTear   = flag.Float64("chaos-tear", 0, "per-write probability of a torn partial write (chaos testing)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, /debug/vars, and /debug/pprof on this address (empty = disabled)")
		calibrate   = flag.Bool("calibrate", false, "run a server-side network calibrator: raw transfer samples sent over the calibrate op are fitted here and trusted estimates applied to the table")
	)
	flag.Parse()

	var perf *hetsched.Perf
	var names []string
	switch {
	case *load != "":
		data, err := os.ReadFile(*load)
		if err != nil {
			fatal(err)
		}
		perf, names, err = netmodel.UnmarshalPerf(data)
		if err != nil {
			fatal(err)
		}
	case *gusto:
		perf = hetsched.Gusto()
		names = hetsched.GustoSites
	case *random:
		perf = hetsched.RandomPerf(rand.New(rand.NewSource(*seed)), *p, hetsched.GustoGuided())
	default:
		fmt.Fprintln(os.Stderr, "hcdird: pick -gusto, -random, or -load FILE")
		os.Exit(1)
	}

	store, err := directory.NewStore(perf, names)
	if err != nil {
		fatal(err)
	}
	srv := directory.NewServer(store)
	if *idleTimeout > 0 {
		srv.SetIdleTimeout(*idleTimeout)
	}
	var stopMetrics func() error
	if *metricsAddr != "" {
		reg := obs.Default()
		// Declare every standard family up front so scrapers see the
		// full schema (HELP/TYPE) even before any samples exist.
		obs.DeclareStandard(reg)
		srv.SetMetrics(reg)
		mbound, stop, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		stopMetrics = stop
		fmt.Printf("hcdird: telemetry on http://%s/metrics (plus /debug/vars, /debug/pprof)\n", mbound)
	}
	if *calibrate {
		// The server-side calibrator lets thin data planes push raw
		// samples and have the directory do the fitting; its prior is
		// the table the daemon starts from.
		cal, err := calib.New(perf, calib.Config{})
		if err != nil {
			fatal(err)
		}
		srv.SetCalibrator(cal)
		fmt.Println("hcdird: server-side network calibration armed (calibrate op accepts raw samples)")
	}
	if *chaosDrop > 0 || *chaosStall > 0 || *chaosTear > 0 {
		stallProb := 0.0
		if *chaosStall > 0 {
			stallProb = 0.1
		}
		inj := faults.NewConnInjector(faults.ConnConfig{
			Seed:        *seed + 2,
			DropProb:    *chaosDrop,
			StallProb:   stallProb,
			Stall:       *chaosStall,
			PartialProb: *chaosTear,
		})
		srv.SetConnWrapper(inj.Wrap)
		fmt.Printf("hcdird: CHAOS MODE — drop %.2g, stall %v, tear %.2g (seed %d)\n",
			*chaosDrop, *chaosStall, *chaosTear, *seed+2)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hcdird: serving %d processors on %s\n", store.N(), bound)
	if *idleTimeout > 0 {
		fmt.Printf("hcdird: dropping connections idle > %v\n", *idleTimeout)
	}

	stop := make(chan struct{})
	feederDone := make(chan error, 1)
	if *drift > 0 {
		feeder := directory.NewFeeder(store, rand.New(rand.NewSource(*seed+1)), netmodel.DefaultDrift())
		go func() { feederDone <- feeder.Run(*drift, stop) }()
		fmt.Printf("hcdird: drifting bandwidths every %v\n", *drift)
	} else {
		feederDone <- nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting immediately, but let clients with
	// requests in flight finish their request loops instead of dying
	// mid-frame; only then stop the feeder, metrics, and store.
	fmt.Printf("hcdird: draining (grace %v)\n", *drainGrace)
	drainErr := srv.Drain(*drainGrace)
	close(stop)
	if err := <-feederDone; err != nil {
		fmt.Fprintln(os.Stderr, "hcdird: feeder:", err)
	}
	if stopMetrics != nil {
		if err := stopMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "hcdird: metrics:", err)
		}
	}
	if drainErr != nil {
		fatal(drainErr)
	}
	if *save != "" {
		final, _ := store.Snapshot()
		data, err := netmodel.MarshalPerf(final, store.Names())
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("hcdird: state saved to %s\n", *save)
	}
	fmt.Println("hcdird: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcdird:", err)
	os.Exit(1)
}
