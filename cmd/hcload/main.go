// Command hcload replays a storm of concurrent plan-service clients
// against a hetpland daemon and reports what came back: throughput,
// latency percentiles of served requests, and how much of the storm
// was shed, coalesced, cached, or served degraded. Pattern popularity
// is Zipf-distributed, so a hot set of patterns exercises coalescing
// and the plan cache while the long tail forces real planning passes.
//
// Usage:
//
//	hcload -addr 127.0.0.1:7575 -clients 50 -requests 100
//	hcload -selfhost -p 8 -clients 100 -requests 50 -out BENCH_serve.json
//
// With -selfhost, hcload spins an in-process daemon over a random
// table on a loopback port and storms that — the CI benchmark mode,
// needing no external processes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"hetsched"
	"hetsched/internal/comm"
	"hetsched/internal/directory"
	"hetsched/internal/netmodel"
	"hetsched/internal/obs"
	"hetsched/internal/serve"
)

// report is the whole BENCH_serve.json document. The schema string
// versions it; EXPERIMENTS.md documents the fields.
type report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Clients    int     `json:"clients"`
	PerClient  int     `json:"requests_per_client"`
	Patterns   int     `json:"patterns"`
	ZipfS      float64 `json:"zipf_s"`
	P          int     `json:"p"`
	Bytes      int64   `json:"bytes"`
	DeadlineMS int64   `json:"deadline_ms"`
	Selfhost   bool    `json:"selfhost"`

	DurationSec   float64 `json:"duration_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"latency_p50_ms"`
	P95MS         float64 `json:"latency_p95_ms"`
	P99MS         float64 `json:"latency_p99_ms"`

	Sent      int `json:"sent"`
	Served    int `json:"served"`
	Shed      int `json:"shed"`
	Expired   int `json:"expired"`
	Drained   int `json:"drained"`
	Coalesced int `json:"coalesced"`
	Cached    int `json:"cached"`
	Degraded  int `json:"degraded"` // served on a non-fresh ladder rung
	Errors    int `json:"errors"`

	// Slowest lists the slowest served requests with their trace IDs —
	// paste a trace ID into the daemon's /statusz (or grep its flight
	// dump and Perfetto export) to see where the time went.
	Slowest []slowReq `json:"slowest,omitempty"`
}

// slowReq is one served request in the latency tail.
type slowReq struct {
	Trace     string  `json:"trace"`
	LatencyMS float64 `json:"latency_ms"`
}

// tally is one client goroutine's private accounting, merged after the
// storm so the hot path takes no locks.
type tally struct {
	served, shed, expired, drained int
	coalesced, cached, degraded    int
	errors                         int
	lat                            []time.Duration
	slow                           []slowReq // served requests with trace IDs
}

func main() {
	var (
		addr       = flag.String("addr", "", "hetpland address to storm")
		selfhost   = flag.Bool("selfhost", false, "spin an in-process daemon and storm it")
		p          = flag.Int("p", 8, "processor count (must match the daemon's table; sets the selfhost table size)")
		clients    = flag.Int("clients", 50, "concurrent client connections")
		requests   = flag.Int("requests", 100, "requests per client")
		patterns   = flag.Int("patterns", 32, "distinct pattern seeds (Zipf universe)")
		zipfS      = flag.Float64("zipf-s", 1.3, "Zipf skew; larger concentrates load on hot patterns")
		bytes      = flag.Int64("bytes", 4096, "base message size of requested patterns")
		deadlineMS = flag.Int64("deadline-ms", 1000, "per-request budget sent to the daemon")
		seed       = flag.Int64("seed", 1, "seed for pattern popularity draws and the selfhost table")
		workers    = flag.Int("selfhost-workers", runtime.GOMAXPROCS(0), "selfhost daemon planning workers")
		queueCap   = flag.Int("selfhost-queue", 32, "selfhost daemon admission queue")
		out        = flag.String("out", "", "write the JSON report to this file (empty = stdout only)")
	)
	flag.Parse()

	target := *addr
	if *selfhost {
		if target != "" {
			fatal(fmt.Errorf("-selfhost and -addr are mutually exclusive"))
		}
		var stop func()
		var err error
		target, stop, err = startSelfhost(*p, *seed, *workers, *queueCap)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Printf("hcload: selfhost daemon on %s (p=%d, workers=%d, queue=%d)\n",
			target, *p, *workers, *queueCap)
	}
	if target == "" {
		fmt.Fprintln(os.Stderr, "hcload: need -addr or -selfhost")
		os.Exit(1)
	}

	tallies := make([]tally, *clients)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < *clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			storm(target, g, *requests, *patterns, *zipfS, *p, *bytes, *deadlineMS,
				*seed, &tallies[g])
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)

	var total tally
	for i := range tallies {
		tl := &tallies[i]
		total.served += tl.served
		total.shed += tl.shed
		total.expired += tl.expired
		total.drained += tl.drained
		total.coalesced += tl.coalesced
		total.cached += tl.cached
		total.degraded += tl.degraded
		total.errors += tl.errors
		total.lat = append(total.lat, tl.lat...)
		total.slow = append(total.slow, tl.slow...)
	}
	sort.Slice(total.slow, func(i, j int) bool { return total.slow[i].LatencyMS > total.slow[j].LatencyMS })
	if len(total.slow) > 5 {
		total.slow = total.slow[:5]
	}
	sent := *clients * *requests
	rep := report{
		Schema:     "hetsched-bench-serve/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Clients:    *clients,
		PerClient:  *requests,
		Patterns:   *patterns,
		ZipfS:      *zipfS,
		P:          *p,
		Bytes:      *bytes,
		DeadlineMS: *deadlineMS,
		Selfhost:   *selfhost,

		DurationSec:   wall.Seconds(),
		ThroughputRPS: float64(sent) / wall.Seconds(),
		P50MS:         ms(percentile(total.lat, 50)),
		P95MS:         ms(percentile(total.lat, 95)),
		P99MS:         ms(percentile(total.lat, 99)),

		Sent:      sent,
		Served:    total.served,
		Shed:      total.shed,
		Expired:   total.expired,
		Drained:   total.drained,
		Coalesced: total.coalesced,
		Cached:    total.cached,
		Degraded:  total.degraded,
		Errors:    total.errors,
		Slowest:   total.slow,
	}
	fmt.Printf("hcload: %d requests in %.2fs (%.0f req/s): served %d (coalesced %d, cached %d, non-fresh %d), shed %d, expired %d, drained %d, errors %d\n",
		sent, rep.DurationSec, rep.ThroughputRPS, rep.Served, rep.Coalesced, rep.Cached,
		rep.Degraded, rep.Shed, rep.Expired, rep.Drained, rep.Errors)
	fmt.Printf("hcload: served latency p50 %.2fms p95 %.2fms p99 %.2fms\n",
		rep.P50MS, rep.P95MS, rep.P99MS)
	for _, s := range rep.Slowest {
		fmt.Printf("hcload: slowest: trace %s %.2fms\n", s.Trace, s.LatencyMS)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("hcload: report written to %s\n", *out)
	} else {
		fmt.Println(string(data))
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// storm runs one client connection's request loop. Pattern seeds are
// drawn from a per-client Zipf so every run with the same flags
// replays the same storm shape.
func storm(target string, g, requests, patterns int, zipfS float64, p int,
	bytes, deadlineMS, seed int64, tl *tally) {
	rng := rand.New(rand.NewSource(seed + int64(g)*7919))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(patterns-1))
	cl, err := serve.Dial(context.Background(), target, 5*time.Second)
	if err != nil {
		tl.errors += requests
		return
	}
	defer cl.Close()
	for k := 0; k < requests; k++ {
		req := directory.PlanRequest{
			ID:         uint64(g*requests + k),
			P:          p,
			Kind:       directory.PatternRandom,
			Bytes:      bytes,
			Seed:       int64(zipf.Uint64()),
			DeadlineMS: deadlineMS,
		}
		// Every request gets its own trace ID: the daemon echoes it on
		// the response, tags its flight events and exemplars with it,
		// and (when tail sampling is armed) records a span tree under it.
		ctx := obs.WithTrace(context.Background(),
			obs.TraceContext{TraceID: obs.NewTraceID()})
		t0 := time.Now()
		resp, err := cl.Plan(ctx, req)
		if err != nil {
			tl.errors++
			return // connection is gone; remaining requests were never sent
		}
		switch resp.Status {
		case directory.PlanServed:
			tl.served++
			d := time.Since(t0)
			tl.lat = append(tl.lat, d)
			tl.slow = append(tl.slow, slowReq{Trace: resp.Trace, LatencyMS: ms(d)})
			if resp.Coalesced {
				tl.coalesced++
			}
			if resp.Cached {
				tl.cached++
			}
			if resp.Health != "" && resp.Health != "ok" {
				tl.degraded++
			}
		case directory.PlanShed:
			tl.shed++
		case directory.PlanExpired:
			tl.expired++
		case directory.PlanDraining:
			tl.drained++
		default:
			tl.errors++
		}
	}
}

// startSelfhost builds an in-process daemon over a seeded random table
// and returns its loopback address and a teardown function.
func startSelfhost(p int, seed int64, workers, queueCap int) (string, func(), error) {
	perf := hetsched.RandomPerf(rand.New(rand.NewSource(seed)), p, hetsched.GustoGuided())
	source := func() (*netmodel.Perf, error) { return perf.Clone(), nil }
	c, err := comm.New(p, source, comm.Config{})
	if err != nil {
		return "", nil, err
	}
	daemon, err := serve.NewDaemon(c, nil, serve.Config{Workers: workers, Queue: queueCap})
	if err != nil {
		return "", nil, err
	}
	srv := serve.NewServer(daemon, serve.ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	return addr, func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "hcload: selfhost close:", err)
		}
	}, nil
}

// percentile returns the q-th percentile (nearest-rank) of ds.
func percentile(ds []time.Duration, q int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := make([]time.Duration, len(ds))
	copy(s, ds)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := (q*len(s) + 99) / 100
	if k < 1 {
		k = 1
	}
	return s[k-1]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcload:", err)
	os.Exit(1)
}
