module hetsched

go 1.22
